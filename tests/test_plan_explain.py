"""EXPLAIN rendering and the JSON schema the CI smoke step relies on."""

import json

import pytest

from repro.plan.explain import (
    ExplainReport,
    PlanNode,
    validate_explain_json,
)


def make_report(with_actual=True):
    chosen = PlanNode(
        label="join[clb]",
        estimated={"seconds": 0.012},
        actual={"seconds": 0.010} if with_actual else None,
        chosen=True,
        detail={"label": "join[clb]", "method": "join", "bound": "clb"},
    )
    loser = PlanNode(
        label="probing",
        estimated={"seconds": 0.050},
        detail={"label": "probing", "method": "probing"},
    )
    root = PlanNode(
        label="topk k=3 |P|=400 |T|=150 d=2",
        estimated={"seconds": 0.012},
        actual={"seconds": 0.010} if with_actual else None,
        chosen=True,
        detail={"label": "join[clb]"},
        children=[chosen, loser],
    )
    return ExplainReport(
        tree=root, chosen="join[clb]", planner_version=0,
        profile={"n_competitors": 400},
    )


class TestFormatTree:
    def test_tree_shape_and_markers(self):
        text = make_report().format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("topk k=3")
        assert "(chosen)" in lines[0]
        assert lines[1].startswith("├── join[clb]")
        assert lines[2].startswith("└── probing")

    def test_costs_column(self):
        text = make_report().format_tree()
        assert "est=0.012s" in text
        assert "act=0.01s" in text
        # The un-executed candidate shows an estimate only.
        loser_line = [l for l in text.splitlines() if "probing" in l][0]
        assert "act=" not in loser_line

    def test_no_actuals_renders_estimates_only(self):
        text = make_report(with_actual=False).format_tree()
        assert "act=" not in text
        assert "est=" in text


class TestValidateExplainJson:
    def test_valid_document_roundtrips_through_json(self):
        doc = json.loads(json.dumps(make_report().to_dict()))
        validate_explain_json(doc)  # does not raise

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_explain_json([])

    def test_rejects_missing_top_level_key(self):
        doc = make_report().to_dict()
        del doc["planner_version"]
        with pytest.raises(ValueError, match="planner_version"):
            validate_explain_json(doc)

    def test_rejects_empty_chosen(self):
        doc = make_report().to_dict()
        doc["chosen"] = ""
        with pytest.raises(ValueError, match="non-empty"):
            validate_explain_json(doc)

    def test_rejects_node_missing_key(self):
        doc = make_report().to_dict()
        del doc["tree"]["children"][0]["estimated"]
        with pytest.raises(ValueError, match=r"children\[0\]"):
            validate_explain_json(doc)

    def test_rejects_chosen_without_matching_node(self):
        doc = make_report().to_dict()
        doc["chosen"] = "join[alb]"
        with pytest.raises(ValueError, match="no chosen=true node"):
            validate_explain_json(doc)

    def test_rejects_executed_node_without_actual_seconds(self):
        doc = make_report().to_dict()
        doc["tree"]["children"][0]["actual"] = {"node_accesses": 4.0}
        with pytest.raises(ValueError, match="actual 'seconds'"):
            validate_explain_json(doc)

    def test_actual_may_be_null_on_unexecuted_plan(self):
        doc = make_report(with_actual=False).to_dict()
        validate_explain_json(doc)  # estimate-only plans are valid
