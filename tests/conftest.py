"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.costs.attribute import LinearCost
from repro.costs.model import CostModel, paper_cost_model
from repro.rtree.tree import RTree


@pytest.fixture(scope="session", autouse=True)
def lock_order_witness():
    """Opt-in lock-order witness over every engine the suite constructs.

    With ``SKYUP_LOCK_WITNESS=1`` in the environment (the chaos CI job
    sets it), every :class:`~repro.serve.engine.UpgradeEngine` built by
    any test is instrumented with one shared
    :class:`~repro.analysis.lockorder.LockOrderWitness`; at session end
    the witness fails the run if any lock-order inversion was recorded —
    even one that did not happen to deadlock this time.
    """
    if os.environ.get("SKYUP_LOCK_WITNESS") != "1":
        yield None
        return
    from repro.analysis.lockorder import LockOrderWitness, instrument_engine
    from repro.serve import UpgradeEngine

    witness = LockOrderWitness()
    original_init = UpgradeEngine.__init__

    def recording_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instrument_engine(self, witness)

    UpgradeEngine.__init__ = recording_init
    try:
        yield witness
    finally:
        UpgradeEngine.__init__ = original_init
        witness.check()


@pytest.fixture(scope="session")
def rng():
    """A session-wide deterministic random generator."""
    return np.random.default_rng(20120401)


@pytest.fixture()
def cost_model_2d() -> CostModel:
    """The paper's reciprocal-sum cost model in two dimensions."""
    return paper_cost_model(2)


@pytest.fixture()
def cost_model_3d() -> CostModel:
    """The paper's reciprocal-sum cost model in three dimensions."""
    return paper_cost_model(3)


@pytest.fixture()
def linear_model_3d() -> CostModel:
    """A linear cost model safe for negative coordinates (phone data)."""
    return CostModel([LinearCost(0.0, 1.0) for _ in range(3)])


@pytest.fixture()
def small_tree_2d(rng) -> RTree:
    """A bulk-loaded 300-point 2-d tree over [0, 1]^2."""
    points = np.random.default_rng(5).random((300, 2))
    return RTree.bulk_load(points)


def make_mixed_instance(seed: int, n_p: int = 200, n_t: int = 60, dims: int = 2):
    """A (P, T) instance where T overlaps P's domain (mixed dominance)."""
    gen = np.random.default_rng(seed)
    competitors = gen.random((n_p, dims))
    products = gen.random((n_t, dims)) * 1.6
    return competitors, products
