"""Benign patterns the deep rules must stay silent on.

No seeded defects: every class here is either below the inference
thresholds on purpose (a deliberate lock-free fast path must not vote a
guard in) or genuinely consistent once entry locks are propagated.
"""

import threading


class FastPath:
    """A deliberate lock-free fast path: 2/4 guarded is no majority."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def record_again(self):
        with self._lock:
            self.hits += 1

    def fast_hits(self):
        return self.hits

    def fast_reset(self):
        self.hits = 0


class CtorOnly:
    """Written only during construction: nothing shared to infer."""

    def __init__(self):
        self._lock = threading.Lock()
        self.config = {"a": 1}

    def read_one(self):
        return self.config.get("a")

    def read_two(self):
        return self.config.get("a")

    def read_three(self):
        return len(self.config)


class LockFree:
    """No lock anywhere: the class is exempt from inference."""

    def __init__(self):
        self.scratch = []

    def push(self, x):
        self.scratch.append(x)

    def pop(self):
        return self.scratch.pop()

    def size(self):
        return len(self.scratch)
