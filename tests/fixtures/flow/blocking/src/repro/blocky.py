"""Blocking-under-lock chains (SKY1004), direct and interprocedural.

Every flagged site holds an exclusive lock while reaching a blocking
primitive; ``safe_drain`` proves the same primitive without the lock
stays silent.
"""

import threading
import time


class Pump:
    def __init__(self):
        self._lock = threading.Lock()
        self._q = None

    def drain_direct(self):
        with self._lock:
            return self._q.get()  # seeded SKY1004: queue receive

    def pause_direct(self):
        with self._lock:
            time.sleep(0.1)  # seeded SKY1004: sleep

    def drain_via_helper(self):
        with self._lock:
            return self._wait()  # seeded SKY1004: blocking callee

    def _wait(self):
        return self._q.get()

    def reap(self, proc):
        with self._lock:
            proc.join()  # seeded SKY1004: process join

    def safe_drain(self):
        return self._q.get()  # no lock held: silent
