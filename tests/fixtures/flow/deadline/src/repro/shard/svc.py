"""Deadline-propagation chains (SKY1005).

``fetch`` accepts a deadline and reaches the shard RPC; ``query_bad``
has a budget in hand and drops it on the floor at the ``fetch`` call.
The keyword- and positional-binding variants must stay silent.
"""


class Handle:
    """Stand-in for the shard RPC primitive (``.request``)."""

    def request(self, op, timeout=None):
        return op, timeout


def fetch(handle, deadline=None):
    return handle.request("rows", timeout=deadline)


def query_bad(handle, deadline):
    return fetch(handle)  # seeded SKY1005: deadline dropped


def query_kw(handle, deadline):
    return fetch(handle, deadline=deadline)


def query_pos(handle, budget):
    return fetch(handle, budget)


def no_budget(handle):
    return fetch(handle)  # caller has no deadline material: silent
