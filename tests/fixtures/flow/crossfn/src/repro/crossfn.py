"""Cross-function guarded accesses: the case the lexical rule cannot see.

``_push_locked`` / ``_drain_locked`` touch ``pending`` with no ``with``
block in sight — every caller already holds ``_lock``, so the entry-lock
fixpoint must count those accesses as guarded.  The lexical SKY101
checker (annotation present, no ``# holds-lock`` escape hatch) flags
them; the interprocedural rules must not.
"""

import threading


class Buffered:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []  # guarded-by: _lock

    def push(self, item):
        with self._lock:
            self._push_locked(item)

    def pop_all(self):
        with self._lock:
            return self._drain_locked()

    def size(self):
        with self._lock:
            return len(self.pending)

    def _push_locked(self, item):
        self.pending.append(item)

    def _drain_locked(self):
        out = list(self.pending)
        self.pending.clear()
        return out
