"""Seeded true races: the minority access is the bug.

Each class votes a guard in from the majority of its accesses; the one
access that dodges the lock (or holds it in an inadequate mode) is the
seeded defect the deep rules must pin, by line.
"""

import threading


class Counter:
    """3/4 accesses under ``_lock``; the lock-free read is a race."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def incr(self):
        with self._lock:
            self.count += 1

    def decr(self):
        with self._lock:
            self.count -= 1

    def reset(self):
        with self._lock:
            self.count = 0

    def racy_peek(self):
        return self.count  # seeded SKY1001: no lock held


class RWLock:
    """Stub readers-writer lock (the analyzer keys on method names)."""

    def read_locked(self):
        return self

    def write_locked(self):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class Registry:
    """Writes need the write side; one sneaks in under the read side."""

    def __init__(self):
        self._rw = RWLock()
        self.table = {}

    def put(self, key, value):
        with self._rw.write_locked():
            self.table[key] = value

    def drop(self, key):
        with self._rw.write_locked():
            self.table.pop(key, None)

    def merge(self, other):
        with self._rw.write_locked():
            self.table.update(other)

    def racy_put(self, key, value):
        with self._rw.read_locked():
            self.table[key] = value  # seeded SKY1002: write under read
