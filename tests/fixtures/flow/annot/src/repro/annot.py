"""Annotation drift, both directions (SKY1003).

``Stale`` declares one lock but every access holds another; the
annotation is a lie that would silently disable the lexical checker.
``Unannotated`` is perfectly consistent across enough accesses that the
analyzer should ask for the annotation to be written down.
"""

import threading


class Stale:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.rows = []  # guarded-by: _aux  (seeded SKY1003: stale)

    def add(self, row):
        with self._lock:
            self.rows.append(row)

    def drop_all(self):
        with self._lock:
            self.rows.clear()

    def size(self):
        with self._lock:
            return len(self.rows)


class Unannotated:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = {}

    def set(self, key, value):
        with self._lock:
            self.state[key] = value

    def unset(self, key):
        with self._lock:
            self.state.pop(key, None)

    def lookup(self, key):
        with self._lock:
            return self.state.get(key)

    def snapshot(self):
        with self._lock:
            return dict(self.state)
