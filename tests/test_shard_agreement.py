"""Seeded agreement: the sharded engine vs the single-process engine.

The acceptance bar for the scatter-gather tier is *bit-identical*
results — not "close", not "same set": the same
``(cost, record_id)``-ordered result lists the thread-tier
:class:`UpgradeEngine` produces, for every plan shape (``join``,
``probing``, ``auto``), for product queries, for mixed batches, and
across catalog mutations including shard-segment growth.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    CostModel,
    EngineConfig,
    LinearCost,
    MarketSession,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)
from repro.shard import ShardedUpgradeEngine

DIMS = 3
TIMEOUT = 120  # every blocking wait below is bounded: a hang is a bug


def make_catalogs(seed, n_competitors=40, n_products=25):
    rng = random.Random(seed)
    comp = [
        tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        for _ in range(n_competitors)
    ]
    prod = [
        tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        for _ in range(n_products)
    ]
    return comp, prod


def make_session(competitors, products):
    session = MarketSession(
        DIMS, CostModel([LinearCost(10.0, 1.0) for _ in range(DIMS)])
    )
    for p in competitors:
        session.add_competitor(p)
    for t in products:
        session.add_product(t)
    return session


def engine_pair(method, competitors, products, processes=2, shards=3):
    single = UpgradeEngine(
        make_session(competitors, products),
        EngineConfig(workers=0, method=method),
    )
    sharded = ShardedUpgradeEngine(
        make_session(competitors, products),
        EngineConfig(
            workers=0, method=method, processes=processes, shards=shards
        ),
    )
    return single, sharded


def assert_topk_agrees(single, sharded, ks=(1, 3, 8, 25)):
    for k in ks:
        a = single.query(TopKQuery(k=k)).results
        b = sharded.query(TopKQuery(k=k)).results
        assert a == b, f"top-{k} diverged"


def assert_products_agree(single, sharded, limit=8):
    pids = sorted(single.session.products_by_id()[0])[:limit]
    for pid in pids:
        a = single.query(ProductQuery(product_id=pid)).results
        b = sharded.query(ProductQuery(product_id=pid)).results
        assert a == b, f"product {pid} diverged"


@pytest.mark.parametrize("method", ["join", "probing", "auto"])
@pytest.mark.parametrize("seed", [11, 29])
def test_seeded_agreement_per_method(method, seed):
    competitors, products = make_catalogs(seed)
    single, sharded = engine_pair(method, competitors, products)
    try:
        assert_topk_agrees(single, sharded)
        assert_products_agree(single, sharded)
    finally:
        single.close()
        sharded.close()


def test_mixed_batch_agreement():
    competitors, products = make_catalogs(101)
    single, sharded = engine_pair("join", competitors, products)
    pid = sorted(single.session.products_by_id()[0])[2]
    batch = [
        TopKQuery(k=4),
        ProductQuery(product_id=pid),
        TopKQuery(k=9),
    ]
    try:
        a = single.execute_batch(batch)
        b = sharded.execute_batch(batch)
        assert [r.results for r in a] == [r.results for r in b]
        assert all(not r.partial for r in b)
    finally:
        single.close()
        sharded.close()


def test_agreement_across_mutations_and_growth():
    rng = random.Random(5)
    competitors, products = make_catalogs(5, n_competitors=30)
    single, sharded = engine_pair(
        "join", competitors, products, processes=2, shards=4
    )
    try:
        assert_topk_agrees(single, sharded, ks=(5,))

        # Incremental mutations: each republishes one shard in place.
        new_point = (1.25, 2.5, 3.75)
        single.add_competitor(new_point)
        sharded.add_competitor(new_point)
        victim = sorted(single.session.competitors_by_id()[0])[3]
        assert single.remove_competitor(victim)
        assert sharded.remove_competitor(victim)
        assert_topk_agrees(single, sharded, ks=(1, 6))
        assert_products_agree(single, sharded, limit=4)

        # Committed upgrades mutate the *product* side (broadcast path).
        winner = single.query(TopKQuery(k=1)).results[0]
        single.commit_upgrade(winner)
        sharded.commit_upgrade(winner)
        assert_topk_agrees(single, sharded, ks=(1, 6))

        # Growth: push shards past their padded capacity so fresh
        # segment pairs are allocated and reloaded mid-session.
        for _ in range(60):
            pt = tuple(
                round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS)
            )
            single.add_competitor(pt)
            sharded.add_competitor(pt)
        assert_topk_agrees(single, sharded, ks=(3, 12))
        assert_products_agree(single, sharded, limit=4)

        # Every shard epoch moved; the vector has one entry per shard
        # plus the product epoch at the end.
        vector = sharded.epoch_vector
        assert len(vector) == 4 + 1
        assert all(e > 0 for e in vector)
    finally:
        single.close()
        sharded.close()


def test_single_process_single_shard_degenerate_topology():
    competitors, products = make_catalogs(77, n_competitors=12)
    single, sharded = engine_pair(
        "join", competitors, products, processes=1, shards=1
    )
    try:
        assert_topk_agrees(single, sharded, ks=(1, 12))
    finally:
        single.close()
        sharded.close()


def test_more_shards_than_processes_premerges_locally():
    competitors, products = make_catalogs(13)
    single, sharded = engine_pair(
        "join", competitors, products, processes=2, shards=5
    )
    try:
        assert_topk_agrees(single, sharded, ks=(2, 7))
        stats = sharded.shard_stats()
        owned = [p["shards"] for p in stats["per_process"]]
        assert sorted(s for shards in owned for s in shards) == list(
            range(5)
        )
    finally:
        single.close()
        sharded.close()


def test_empty_competitor_catalog():
    # Every product is competitive: zero-cost results, same canonical
    # ordering, across an engine whose shards are all empty.
    _, products = make_catalogs(3)
    single, sharded = engine_pair("join", [], products)
    try:
        a = single.query(TopKQuery(k=5)).results
        b = sharded.query(TopKQuery(k=5)).results
        assert a == b
        assert all(r.cost == 0.0 for r in b)
    finally:
        single.close()
        sharded.close()
