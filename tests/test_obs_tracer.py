"""Tests for repro.obs: spans, sampling, the thread hop, and exporters."""

import json
import threading

import numpy as np
import pytest

from repro.core.session import MarketSession
from repro.obs import (
    NOOP_SPAN,
    Trace,
    Tracer,
    TraceStore,
    activate,
    current_trace,
    format_text,
    span,
    to_chrome_events,
    to_chrome_json,
)
from repro.serve import EngineConfig, ProductQuery, TopKQuery, UpgradeEngine


def make_session(seed=11, n_p=200, n_t=50, dims=2):
    rng = np.random.default_rng(seed)
    return MarketSession.from_points(
        rng.random((n_p, dims)), 1.0 + rng.random((n_t, dims)),
        max_entries=8,
    )


class TestSpanMechanics:
    def test_nesting_parents_and_layers(self):
        trace = Trace("unit")
        with trace.span("engine.execute"):
            with trace.span("join.refine", jl_len=3) as inner:
                inner.set(new_jl_len=5)
        assert [s.name for s in trace.spans] == [
            "engine.execute", "join.refine",
        ]
        outer, inner = trace.spans
        assert outer.parent == -1 and inner.parent == outer.index
        assert inner.attrs == {"jl_len": 3, "new_jl_len": 5}
        assert trace.layers() == ["engine", "join"]
        assert inner.t0 >= outer.t0 and inner.t1 <= outer.t1

    def test_module_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        sp = span("engine.execute", k=5)
        assert sp is NOOP_SPAN
        with sp as inner:
            inner.set(anything=1)  # must be inert, not raise
        assert sp.duration_s == 0.0

    def test_activate_routes_module_span_and_restores(self):
        trace = Trace("unit")
        with activate(trace):
            assert current_trace() is trace
            with span("cache.skyline_get"):
                pass
            with activate(None):
                assert span("dropped") is NOOP_SPAN
            assert current_trace() is trace
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["cache.skyline_get"]

    def test_record_retroactive_span(self):
        trace = Trace("unit")
        trace.record("engine.queue_wait", 1.0, 1.5, worker="w-1")
        (sp,) = trace.spans
        assert sp.duration_s == pytest.approx(0.5)
        assert sp.attrs["worker"] == "w-1"

    def test_max_spans_cap_counts_drops(self):
        trace = Trace("unit", max_spans=2)
        for _ in range(5):
            with trace.span("join.refine"):
                pass
        assert len(trace.spans) == 2
        assert trace.dropped_spans == 3

    def test_exception_still_closes_span(self):
        trace = Trace("unit")
        with pytest.raises(RuntimeError):
            with trace.span("engine.execute"):
                raise RuntimeError("boom")
        (sp,) = trace.spans
        assert sp.t1 >= sp.t0
        assert trace._stack == []


class TestSampling:
    def test_zero_rate_records_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        assert tracer.start("topk") is None
        assert tracer.stats()["started"] == 0

    def test_seeded_draws_are_deterministic(self):
        seq = [
            [
                tracer.start(f"q{i}") is not None
                for i in range(50)
            ]
            for tracer in (
                Tracer(sample_rate=0.4, seed=7),
                Tracer(sample_rate=0.4, seed=7),
            )
        ]
        assert seq[0] == seq[1]
        assert any(seq[0]) and not all(seq[0])
        different = [
            Tracer(sample_rate=0.4, seed=8).start(f"q{i}") is not None
            for i in range(50)
        ]
        assert different != seq[0]

    def test_slow_threshold_keeps_unsampled_trace(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=0.0)
        trace = tracer.start("topk")
        assert trace is not None and not trace.sampled
        with activate(trace), span("engine.execute"):
            pass
        keep, finished = tracer.finish(trace)
        assert keep and finished.attrs["slow"] is True

    def test_finish_drops_unsampled_fast_trace(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=10.0)
        trace = tracer.start("topk")
        with activate(trace), span("engine.execute"):
            pass
        keep, _ = tracer.finish(trace)
        assert not keep
        assert tracer.stats() == {
            "sample_rate": 0.0,
            "slow_threshold_s": 10.0,
            "started": 1,
            "kept": 0,
        }


class TestThreadHop:
    def test_trace_rides_request_across_submit_hop(self):
        session = make_session()
        config = EngineConfig(workers=1, trace_sample_rate=1.0)
        with UpgradeEngine(session, config) as engine:
            main_thread = threading.current_thread().name
            engine.submit(ProductQuery(3)).result(timeout=10.0)
            engine.submit(TopKQuery(k=4)).result(timeout=10.0)
            traces = engine.recent_traces()
        assert len(traces) == 2
        for trace in traces:
            root = trace.spans[0]
            assert root.name == "engine.request" and root.parent == -1
            waits = trace.find("engine.queue_wait")
            execs = trace.find("engine.execute")
            assert len(waits) == 1 and len(execs) == 1
            # Both phases nest under the root and are separable.
            assert waits[0].parent == root.index
            assert execs[0].parent == root.index
            # The execute span ran on a worker, not the submitting thread.
            assert waits[0].attrs["worker"] != main_thread
            # Spans from layers below the engine joined the same trace.
            assert "cache" in trace.layers()
            assert trace.attrs["queue_wait_s"] >= 0.0

    def test_disabled_engine_traces_nothing(self):
        session = make_session()
        with UpgradeEngine(session, EngineConfig(workers=1)) as engine:
            engine.submit(TopKQuery(k=3)).result(timeout=10.0)
            assert engine.recent_traces() == []
            tracing = engine.metrics()["tracing"]
        assert tracing["started"] == 0 and tracing["kept"] == 0


class TestExporters:
    def _trace(self):
        trace = Trace("topk", trace_id=42)
        with trace.span("engine.request"):
            trace.record("engine.queue_wait", 0.0, 0.001)
            with trace.span("engine.execute", kind="topk"):
                with trace.span("join.refine", jl_len=2):
                    pass
        trace.attrs["cache_hit"] = False
        return trace

    def test_chrome_json_shape(self):
        doc = json.loads(to_chrome_json([self._trace()]))
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "engine.request",
            "engine.queue_wait",
            "engine.execute",
            "join.refine",
        }
        for event in complete:
            assert {"pid", "tid", "ts", "dur", "cat", "args"} <= set(event)
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        root = next(e for e in complete if e["name"] == "engine.request")
        assert root["args"]["trace.cache_hit"] is False

    def test_chrome_events_share_one_timeline(self):
        a, b = self._trace(), self._trace()
        events = to_chrome_events([a, b])
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids == {1, 2}

    def test_text_tree_indents_children(self):
        text = format_text([self._trace()])
        lines = text.splitlines()
        assert lines[0].startswith("trace #42 topk")
        assert "\n  engine.request" in text
        assert "\n    engine.execute" in text
        assert "\n      join.refine" in text
        assert "jl_len=2" in text

    def test_store_slowest_ranking_and_eviction(self):
        store = TraceStore(capacity=2)
        slow, fast = Trace("slow"), Trace("fast")
        slow.record("engine.execute", 0.0, 2.0)
        fast.record("engine.execute", 0.0, 0.5)
        evicted = Trace("evicted")
        evicted.record("engine.execute", 0.0, 9.0)
        for trace in (evicted, fast, slow):
            store.add(trace)
        assert [t.name for t in store.slowest(2)] == ["slow", "fast"]
        assert store.stats() == {
            "capacity": 2, "retained": 2, "added": 3,
        }
