"""Thread-safety of the kernel dispatch switch.

The switch is two-level: a locked process-global default (what quarantine
flips) under a per-thread overlay (what ``use_kernels`` sets).  The
reliability guard relies on this: its scalar-oracle recompute runs under
``use_kernels(False)`` on one worker thread while other workers keep
serving through the kernels.
"""

import threading

import pytest

from repro.kernels.switch import (
    kernels_enabled,
    set_kernels_enabled,
    use_kernels,
)


@pytest.fixture(autouse=True)
def _restore_default():
    yield
    set_kernels_enabled(True)


class TestGlobalDefault:
    def test_set_returns_previous_value(self):
        assert set_kernels_enabled(False) is True
        assert set_kernels_enabled(True) is False

    def test_default_is_visible_across_threads(self):
        set_kernels_enabled(False)
        seen = []
        t = threading.Thread(target=lambda: seen.append(kernels_enabled()))
        t.start()
        t.join(5.0)
        assert seen == [False]


class TestThreadLocalOverlay:
    def test_overlay_restores_previous_state(self):
        with use_kernels(False):
            assert not kernels_enabled()
            with use_kernels(True):
                assert kernels_enabled()
            assert not kernels_enabled()
        assert kernels_enabled()

    def test_overlay_restored_when_block_raises(self):
        with pytest.raises(RuntimeError):
            with use_kernels(False):
                raise RuntimeError("boom")
        assert kernels_enabled()

    def test_overlay_does_not_leak_to_other_threads(self):
        """The guard's oracle recompute must not slow anyone else down."""
        in_overlay = threading.Event()
        release = threading.Event()
        observed = []

        def oracle_thread():
            with use_kernels(False):
                in_overlay.set()
                release.wait(5.0)

        def serving_thread():
            in_overlay.wait(5.0)
            observed.append(kernels_enabled())
            release.set()

        threads = [
            threading.Thread(target=oracle_thread),
            threading.Thread(target=serving_thread),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert observed == [True]

    def test_overlay_wins_over_global_flip(self):
        """A mid-recompute quarantine cannot flip the oracle back to the
        kernels it is checking."""
        with use_kernels(False):
            set_kernels_enabled(True)
            assert not kernels_enabled()
        assert kernels_enabled()

    def test_overlay_true_survives_global_quarantine(self):
        with use_kernels(True):
            set_kernels_enabled(False)
            assert kernels_enabled()
        assert not kernels_enabled()

    def test_concurrent_overlays_are_independent(self):
        barrier = threading.Barrier(8, timeout=10.0)
        errors = []

        def worker(enable):
            try:
                for _ in range(200):
                    with use_kernels(enable):
                        if kernels_enabled() is not enable:
                            errors.append("overlay leaked")
                barrier.wait()
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(i % 2 == 0,))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert errors == []
