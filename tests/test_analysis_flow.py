"""The interprocedural flow analysis and the SKY1000 deep-rule family.

The fixture corpus under ``tests/fixtures/flow/`` seeds one defect per
rule (plus benign twins that must stay silent); the assertions pin
exact rule ids *and* line numbers, as in ``test_analysis_lint``.  The
final tests run the deep rules over the real repo — which must be
clean — and exercise the cache and the ``--deep`` CLI surface.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    collect_modules,
    format_github,
    run_lint,
)
from repro.analysis.flow import analyze, extract_module
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def fixture(case: str) -> Path:
    return FIXTURES / case


def deep_findings(root: Path, rule: str):
    found = run_lint(root, select=[rule], deep=True)
    return [f for f in found if f.rule == rule]


def flow_facts(root: Path):
    summaries = [extract_module(m) for m in collect_modules(root)]
    return analyze(summaries)


# ---------------------------------------------------------------------------
# SKY1001 / SKY1002 — inferred-guard races


def test_sky1001_flags_lock_free_minority_access():
    found = deep_findings(fixture("races"), "SKY1001")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/racy.py", 31)
    ]
    assert "Counter.racy_peek holds no lock" in found[0].message
    assert "3/4 accesses" in found[0].message


def test_sky1002_flags_write_under_read_mode():
    found = deep_findings(fixture("races"), "SKY1002")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/racy.py", 71)
    ]
    assert "holds {_rw[read]}" in found[0].message
    assert "not an adequate mode of '_rw'" in found[0].message


def test_races_fixture_has_exactly_the_seeded_findings():
    found = run_lint(fixture("races"), deep=True)
    assert [(f.line, f.rule) for f in found] == [
        (31, "SKY1001"),
        (71, "SKY1002"),
    ]


def test_benign_fixture_is_silent():
    assert run_lint(fixture("benign"), deep=True) == []


# ---------------------------------------------------------------------------
# cross-function guards — what the lexical tracker cannot see


def test_entry_locks_guard_cross_function_accesses():
    facts = flow_facts(fixture("crossfn"))
    (fact,) = [f for f in facts.attrs if f.attr == "pending"]
    assert fact.inferred is not None
    assert fact.guarded_count == len(fact.accesses) == 4
    assert fact.violations == []


def test_crossfn_deep_rules_silent_where_lexical_flags():
    # The lexical checker flags the helpers (annotation present, no
    # holds-lock escape hatch); the interprocedural rules know every
    # caller holds the lock.
    lexical = run_lint(fixture("crossfn"), select=["SKY101"])
    assert [(f.line, f.rule) for f in lexical] == [
        (31, "SKY101"),
        (34, "SKY101"),
        (35, "SKY101"),
    ]
    for rule_id in ("SKY1001", "SKY1002", "SKY1003"):
        assert deep_findings(fixture("crossfn"), rule_id) == []


# ---------------------------------------------------------------------------
# SKY1003 — annotation drift


def test_sky1003_flags_stale_annotation_at_declaration():
    found = deep_findings(fixture("annot"), "SKY1003")
    stale = [f for f in found if "stale" in f.message]
    assert [(f.path, f.line) for f in stale] == [
        ("src/repro/annot.py", 16)
    ]
    assert "declared guarded-by '_aux'" in stale[0].message
    assert "3/3 accesses hold '_lock'" in stale[0].message


def test_sky1003_suggests_missing_annotation():
    found = deep_findings(fixture("annot"), "SKY1003")
    missing = [f for f in found if "no # guarded-by" in f.message]
    assert [(f.path, f.line) for f in missing] == [
        ("src/repro/annot.py", 38)
    ]
    assert "'Unannotated.state'" in missing[0].message
    assert "(4/4 accesses)" in missing[0].message


# ---------------------------------------------------------------------------
# SKY1004 — blocking under an exclusive lock


def test_sky1004_flags_direct_and_interprocedural_blocking():
    found = deep_findings(fixture("blocking"), "SKY1004")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/blocky.py", 19),
        ("src/repro/blocky.py", 23),
        ("src/repro/blocky.py", 27),
        ("src/repro/blocky.py", 34),
    ]
    by_line = {f.line: f.message for f in found}
    assert "blocking '.get()' receive" in by_line[19]
    assert "sleep()" in by_line[23]
    assert "_wait -> blocking '.get()' receive" in by_line[27]
    assert "'proc.join()'" in by_line[34]
    # safe_drain's identical primitive without the lock stays silent.
    assert all(f.line != 37 for f in found)


# ---------------------------------------------------------------------------
# SKY1005 — deadline propagation


def test_sky1005_flags_dropped_deadline_only():
    found = deep_findings(fixture("deadline"), "SKY1005")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/shard/svc.py", 21)
    ]
    assert "drops the deadline" in found[0].message
    assert "'deadline' not bound" in found[0].message
    assert "in query_bad" in found[0].message


def test_deep_rules_skipped_without_deep_flag():
    assert run_lint(fixture("races")) == []
    # ...but an explicit --select opts a deep rule in.
    assert len(run_lint(fixture("races"), select=["SKY1001"])) == 1


# ---------------------------------------------------------------------------
# the summary / findings cache


def _copy_fixture(case: str, tmp_path: Path) -> Path:
    root = tmp_path / case
    shutil.copytree(fixture(case), root)
    return root


def test_findings_cache_warm_run_reuses_everything(tmp_path):
    root = _copy_fixture("races", tmp_path)
    cache = tmp_path / "cache"
    cold_ctx, warm_ctx = [], []
    cold = run_lint(root, deep=True, cache_dir=cache, ctx_out=cold_ctx)
    warm = run_lint(root, deep=True, cache_dir=cache, ctx_out=warm_ctx)
    assert warm == cold and len(cold) == 2
    assert cold_ctx[0].flow_stats["warm"] is False
    assert warm_ctx[0].flow_stats["warm"] is True
    assert (cache / "summaries.json").is_file()
    assert (cache / "findings.json").is_file()


def test_summary_cache_survives_single_file_edit(tmp_path):
    root = _copy_fixture("races", tmp_path)
    extra = root / "src" / "repro" / "extra.py"
    extra.write_text("def noop():\n    return 0\n")
    cache = tmp_path / "cache"
    run_lint(root, deep=True, cache_dir=cache)
    extra.write_text("def noop():\n    return 1\n")
    ctxs = []
    found = run_lint(root, deep=True, cache_dir=cache, ctx_out=ctxs)
    stats = ctxs[0].flow_stats
    # The tree key changed (no warm findings) but every untouched
    # file's summary is reused.
    assert stats["warm"] is False
    assert stats["summary_hits"] == stats["files"] - 1
    assert [(f.line, f.rule) for f in found] == [
        (31, "SKY1001"),
        (71, "SKY1002"),
    ]


def test_corrupt_cache_falls_back_to_cold_run(tmp_path):
    root = _copy_fixture("races", tmp_path)
    cache = tmp_path / "cache"
    cache.mkdir()
    (cache / "summaries.json").write_text("{not json")
    (cache / "findings.json").write_text("[]")
    ctxs = []
    found = run_lint(root, deep=True, cache_dir=cache, ctx_out=ctxs)
    assert ctxs[0].flow_stats["warm"] is False
    assert [(f.line, f.rule) for f in found] == [
        (31, "SKY1001"),
        (71, "SKY1002"),
    ]


# ---------------------------------------------------------------------------
# the repo itself


def test_repo_deep_lints_clean():
    assert run_lint(REPO_ROOT, deep=True) == []


def test_repo_warm_deep_lint_is_fast(tmp_path):
    cache = tmp_path / "cache"
    cold_ctx, warm_ctx = [], []
    run_lint(REPO_ROOT, deep=True, cache_dir=cache, ctx_out=cold_ctx)
    run_lint(REPO_ROOT, deep=True, cache_dir=cache, ctx_out=warm_ctx)
    cold = cold_ctx[0].flow_stats
    warm = warm_ctx[0].flow_stats
    assert cold["warm"] is False and warm["warm"] is True
    assert warm["summary_hits"] == warm["files"]
    # The acceptance bar: a warm deep lint costs < 25% of a cold one.
    assert warm["seconds"] < 0.25 * cold["seconds"]


# ---------------------------------------------------------------------------
# the github reporter and the --deep CLI surface


def test_format_github_escapes_workflow_properties():
    finding = Finding(
        rule="SKY1001",
        path="src/repro/x.py",
        line=3,
        col=7,
        message="50% racy\nsecond line",
    )
    out = format_github([finding])
    assert out.splitlines() == [
        "::error file=src/repro/x.py,line=3,col=7,title=SKY1001"
        "::SKY1001 50%25 racy%0Asecond line",
        "1 finding",
    ]
    assert format_github([]).splitlines() == ["0 findings"]


def test_cli_deep_github_format_annotates(tmp_path, capsys):
    root = _copy_fixture("blocking", tmp_path)
    code = main(
        [
            "lint", "--root", str(root), "--deep",
            "--format", "github", "--cache-dir", "none",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert (
        "::error file=src/repro/blocky.py,line=19,col=20,title=SKY1004"
        in captured.out
    )
    assert "4 findings" in captured.out
    assert "[deep: cold cache" in captured.err


def test_cli_deep_stats_report_warm_cache(tmp_path, capsys):
    root = _copy_fixture("races", tmp_path)
    args = ["lint", "--root", str(root), "--deep"]
    assert main(args) == 1
    capsys.readouterr()
    assert main(args) == 1
    err = capsys.readouterr().err
    assert "[deep: warm cache" in err
    assert (root / ".skyup-cache" / "findings.json").is_file()


def test_cli_deep_json_format_includes_deep_rules(tmp_path, capsys):
    root = _copy_fixture("deadline", tmp_path)
    code = main(
        [
            "lint", "--root", str(root), "--deep",
            "--format", "json", "--cache-dir", "none",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(captured.out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "SKY1005"


def test_cli_list_rules_tags_deep_family(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SKY1001", "SKY1002", "SKY1003", "SKY1004", "SKY1005"):
        assert rule_id in out
    assert "[deep]" in out
