"""Unit and property tests for the dominance primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DimensionalityError
from repro.geometry.point import (
    dimensionality,
    dominates,
    dominates_or_equal,
    is_comparable,
    strictly_dominates,
    validate_point,
)

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
points_3d = st.tuples(coords, coords, coords)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((0, 0), (1, 1))

    def test_better_on_one_dimension_suffices(self):
        assert dominates((0, 5), (1, 5))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable_points(self):
        assert not dominates((0, 1), (1, 0))
        assert not dominates((1, 0), (0, 1))

    def test_never_self_dominates(self):
        p = (3.5, -2.0, 7.0)
        assert not dominates(p, p)

    @given(points_3d, points_3d)
    def test_antisymmetry(self, p, q):
        assert not (dominates(p, q) and dominates(q, p))

    @given(points_3d, points_3d, points_3d)
    def test_transitivity(self, p, q, r):
        if dominates(p, q) and dominates(q, r):
            assert dominates(p, r)

    @given(points_3d, points_3d)
    def test_dominates_implies_weak(self, p, q):
        if dominates(p, q):
            assert dominates_or_equal(p, q)

    @given(points_3d, points_3d)
    def test_strict_implies_dominates(self, p, q):
        if strictly_dominates(p, q):
            assert dominates(p, q)

    @given(points_3d, points_3d)
    def test_comparability_matches_either_direction(self, p, q):
        assert is_comparable(p, q) == (dominates(p, q) or dominates(q, p))


class TestWeakDominance:
    def test_equal_points_weakly_dominate(self):
        assert dominates_or_equal((1, 2), (1, 2))

    def test_violating_dimension_rejects(self):
        assert not dominates_or_equal((2, 0), (1, 5))


class TestDimensionality:
    def test_uniform(self):
        assert dimensionality([(1, 2), (3, 4)]) == 2

    def test_mixed_raises(self):
        with pytest.raises(DimensionalityError):
            dimensionality([(1, 2), (3, 4, 5)])

    def test_empty_raises(self):
        with pytest.raises(DimensionalityError):
            dimensionality([])


class TestValidatePoint:
    def test_converts_to_float_tuple(self):
        assert validate_point([1, 2]) == (1.0, 2.0)

    def test_dims_check(self):
        with pytest.raises(DimensionalityError):
            validate_point((1.0, 2.0), dims=3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_point((1.0, math.nan))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            validate_point((math.inf, 0.0))
