"""ShardedUpgradeEngine behavior: caches, deadlines, metrics, tracing.

Agreement is covered by ``test_shard_agreement``; this file pins the
engine-shaped behavior around the scatter-gather core — epoch-vector
bumps are *per shard*, caches hit and invalidate precisely, deadlines
degrade to partials, the optional thread pool fronts the sharded path,
traces carry worker-side span fragments, and lifecycle errors are typed.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    CostModel,
    EngineConfig,
    LinearCost,
    MarketSession,
    ProductQuery,
    TopKQuery,
)
from repro.exceptions import ConfigurationError, EngineClosedError
from repro.shard import ShardedUpgradeEngine
from repro.shard.partition import shard_of

DIMS = 3
TIMEOUT = 120


def make_session(seed=17, n_competitors=30, n_products=18):
    rng = random.Random(seed)
    session = MarketSession(
        DIMS, CostModel([LinearCost(10.0, 1.0) for _ in range(DIMS)])
    )
    for _ in range(n_competitors):
        session.add_competitor(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    for _ in range(n_products):
        session.add_product(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    return session


@pytest.fixture(scope="module")
def engine():
    eng = ShardedUpgradeEngine(
        make_session(),
        EngineConfig(
            workers=0,
            method="join",
            processes=2,
            shards=4,
            trace_sample_rate=1.0,
        ),
    )
    yield eng
    eng.close()


# ---------------------------------------------------------------------------
# configuration


def test_topology_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(processes=4, shards=2)
    with pytest.raises(ConfigurationError):
        EngineConfig(processes=-1)
    with pytest.raises(ConfigurationError):
        EngineConfig(shards=-1)
    config = EngineConfig(processes=2)  # shards defaults to per-process
    eng = ShardedUpgradeEngine(make_session(n_competitors=8), config)
    try:
        assert eng.n_shards == 2
        assert eng.n_processes == 2
    finally:
        eng.close()


# ---------------------------------------------------------------------------
# epoch vector / caches


def test_epoch_vector_bumps_only_owning_shard(engine):
    before = engine.epoch_vector
    rid = engine.add_competitor((2.0, 2.0, 2.0))
    after = engine.epoch_vector
    owner = shard_of(rid, engine.n_shards)
    for shard in range(engine.n_shards):
        expected = before[shard] + (1 if shard == owner else 0)
        assert after[shard] == expected
    assert after[-1] == before[-1]  # product epoch untouched
    engine.remove_competitor(rid)
    final = engine.epoch_vector
    assert final[owner] == after[owner] + 1


def test_product_mutation_bumps_product_epoch(engine):
    before = engine.epoch_vector
    pid = engine.add_product((5.0, 5.0, 5.0))
    mid = engine.epoch_vector
    assert mid[:-1] == before[:-1]
    assert mid[-1] > before[-1]
    engine.remove_product(pid)
    assert engine.epoch_vector[-1] > mid[-1]


def test_topk_cache_hits_and_prefixes(engine):
    engine.topk_cache.invalidate()
    cold = engine.query(TopKQuery(k=6))
    assert not cold.cache_hit
    warm = engine.query(TopKQuery(k=6))
    assert warm.cache_hit
    assert warm.results == cold.results
    prefix = engine.query(TopKQuery(k=2))
    assert prefix.cache_hit
    assert prefix.results == cold.results[:2]


def test_mutation_invalidates_topk_cache(engine):
    engine.query(TopKQuery(k=3))
    # A dominating competitor lands in every product's region.
    rid = engine.add_competitor((0.01, 0.01, 0.01))
    response = engine.query(TopKQuery(k=3))
    assert not response.cache_hit
    assert response.epoch == engine.epoch_vector
    engine.remove_competitor(rid)


def test_product_query_cache_and_unknown_id(engine):
    pid = sorted(engine.session.products_by_id()[0])[0]
    engine.skyline_cache.clear()
    cold = engine.query(ProductQuery(product_id=pid))
    warm = engine.query(ProductQuery(product_id=pid))
    assert not cold.cache_hit and warm.cache_hit
    assert cold.results == warm.results
    with pytest.raises(ConfigurationError):
        engine.query(ProductQuery(product_id=999_999))


# ---------------------------------------------------------------------------
# deadlines


def test_expired_deadline_degrades_to_partial(engine):
    response = engine.query(TopKQuery(k=4, deadline_s=0.0))
    assert response.partial
    assert len(response.results) <= 4
    response = engine.query(ProductQuery(product_id=0, deadline_s=0.0))
    assert response.partial
    assert response.results == []


# ---------------------------------------------------------------------------
# metrics / tracing


def test_metrics_shape(engine):
    engine.query(TopKQuery(k=2))
    snap = engine.metrics()
    shards = snap["shards"]
    assert shards["n_shards"] == 4
    assert shards["n_processes"] == 2
    assert len(shards["epoch_vector"]) == 5
    per_proc = shards["per_process"]
    assert [p["proc"] for p in per_proc] == [0, 1]
    for entry in per_proc:
        assert entry["alive"] is True
        assert entry["crashes"] == 0
        assert entry["queue_depth"] >= 0
    assert snap["reliability"]["worker_crashes"] == 0
    assert "hit_rate" in snap["topk_cache"]


def test_traces_include_worker_fragments(engine):
    engine.topk_cache.invalidate()
    engine.query(TopKQuery(k=3))
    traces = engine.recent_traces()
    assert traces
    names = {span.name for span in traces[-1].spans}
    assert "engine.request" in names
    assert "engine.execute" in names
    assert "shard.topk_next" in names  # replayed from the workers
    shard_spans = [
        s for s in traces[-1].spans if s.name == "shard.topk_next"
    ]
    assert all("proc" in s.attrs for s in shard_spans)


def test_product_trace_has_skyline_fragments(engine):
    engine.skyline_cache.clear()
    pid = sorted(engine.session.products_by_id()[0])[1]
    engine.query(ProductQuery(product_id=pid))
    names = {span.name for span in engine.recent_traces()[-1].spans}
    assert "shard.skylines" in names


# ---------------------------------------------------------------------------
# the optional thread pool in front of the sharded path


def test_pooled_submission():
    eng = ShardedUpgradeEngine(
        make_session(seed=23, n_competitors=20),
        EngineConfig(workers=2, method="join", processes=2, shards=2),
    )
    try:
        pendings = eng.submit_batch(
            [TopKQuery(k=3), TopKQuery(k=5), TopKQuery(k=1)]
        )
        responses = [p.result(timeout=TIMEOUT) for p in pendings]
        assert [len(r.results) for r in responses] == [3, 5, 1]
        assert responses[1].results[:3] == responses[0].results
    finally:
        eng.close()


def test_workerless_engine_rejects_submit(engine):
    with pytest.raises(ConfigurationError):
        engine.submit(TopKQuery(k=1))


# ---------------------------------------------------------------------------
# lifecycle


def test_close_is_idempotent_and_final():
    eng = ShardedUpgradeEngine(
        make_session(seed=31, n_competitors=10, n_products=6),
        EngineConfig(workers=0, method="join", processes=1, shards=1),
    )
    assert eng.query(TopKQuery(k=1)).results
    eng.close()
    eng.close()
    with pytest.raises(EngineClosedError):
        eng.query(TopKQuery(k=1))


def test_context_manager():
    with ShardedUpgradeEngine(
        make_session(seed=37, n_competitors=10, n_products=6),
        EngineConfig(workers=0, method="join", processes=1, shards=1),
    ) as eng:
        assert len(eng.query(TopKQuery(k=2)).results) == 2
    with pytest.raises(EngineClosedError):
        eng.query(TopKQuery(k=1))


def test_invalid_query_types(engine):
    with pytest.raises(ConfigurationError):
        engine.query(TopKQuery(k=0))
    with pytest.raises(ConfigurationError):
        engine.query("not a query")
