"""Tests for counters, reports, and timers."""

import time

from repro.instrumentation import Counters, RunReport, Timer


class TestCounters:
    def test_start_at_zero(self):
        c = Counters()
        assert all(v == 0 for v in c.as_dict().values())

    def test_as_dict_covers_all_slots(self):
        c = Counters()
        assert set(c.as_dict()) == set(Counters.__slots__)

    def test_merge(self):
        a, b = Counters(), Counters()
        a.node_accesses = 3
        b.node_accesses = 4
        b.dominance_tests = 7
        a.merge(b)
        assert a.node_accesses == 7
        assert a.dominance_tests == 7

    def test_reset(self):
        c = Counters()
        c.heap_pops = 9
        c.reset()
        assert c.heap_pops == 0

    def test_repr_shows_only_nonzero(self):
        c = Counters()
        c.upgrade_calls = 2
        text = repr(c)
        assert "upgrade_calls" in text
        assert "node_accesses" not in text


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed_s >= 0.009


class TestRunReport:
    def test_defaults(self):
        report = RunReport()
        assert report.algorithm == ""
        assert report.elapsed_s == 0.0
        assert isinstance(report.counters, Counters)
        assert report.extras == {}

    def test_independent_counter_instances(self):
        a, b = RunReport(), RunReport()
        a.counters.heap_pops = 5
        assert b.counters.heap_pops == 0
