"""Tests for counters, reports, and timers."""

import time

from repro.instrumentation import Counters, RunReport, Timer


class TestCounters:
    def test_start_at_zero(self):
        c = Counters()
        assert all(v == 0 for v in c.as_dict().values())

    def test_as_dict_covers_all_counter_fields(self):
        c = Counters()
        assert set(c.as_dict()) == set(Counters.COUNTER_FIELDS)
        # Every slot is either an integer counter or the timings dict.
        assert set(Counters.__slots__) == set(Counters.COUNTER_FIELDS) | {
            "timings"
        }

    def test_merge(self):
        a, b = Counters(), Counters()
        a.node_accesses = 3
        b.node_accesses = 4
        b.dominance_tests = 7
        a.merge(b)
        assert a.node_accesses == 7
        assert a.dominance_tests == 7

    def test_copy_is_independent(self):
        a = Counters()
        a.heap_pops = 2
        b = a.copy()
        b.heap_pops = 9
        assert a.heap_pops == 2

    def test_add_returns_elementwise_sum(self):
        a, b = Counters(), Counters()
        a.node_accesses = 1
        b.node_accesses = 2
        b.skyline_points = 3
        total = a + b
        assert total.node_accesses == 3
        assert total.skyline_points == 3
        assert a.node_accesses == 1  # operands untouched

    def test_equality_is_by_value(self):
        a, b = Counters(), Counters()
        a.heap_pushes = b.heap_pushes = 5
        assert a == b
        b.heap_pushes = 6
        assert a != b

    def test_merged_worker_counters_equal_serial_run(self):
        """Per-worker counters merged afterwards == one shared serial
        counter — the contract the engine's metrics aggregation relies on.
        """
        import numpy as np

        from repro.core.dominators import get_dominating_skyline
        from repro.core.upgrade import upgrade
        from repro.costs.model import paper_cost_model
        from repro.rtree.tree import RTree

        rng = np.random.default_rng(42)
        tree = RTree.bulk_load(rng.random((150, 2)), max_entries=8)
        model = paper_cost_model(2)
        products = [tuple(1.0 + p) for p in rng.random((30, 2))]

        serial = Counters()
        for t in products:
            upgrade(
                get_dominating_skyline(tree, t, serial), t, model,
                stats=serial,
            )

        workers = [Counters(), Counters(), Counters()]
        for i, t in enumerate(products):
            own = workers[i % len(workers)]
            upgrade(
                get_dominating_skyline(tree, t, own), t, model, stats=own
            )
        merged = Counters()
        for own in workers:
            merged.merge(own)
        assert merged == serial
        assert merged.as_dict() == serial.as_dict()

    def test_reset(self):
        c = Counters()
        c.heap_pops = 9
        c.add_time("kernel.upgrade", 0.5)
        c.reset()
        assert c.heap_pops == 0
        assert c.timings == {}

    def test_timings_accumulate_and_merge(self):
        a, b = Counters(), Counters()
        a.add_time("kernel.upgrade", 0.25)
        a.add_time("kernel.upgrade", 0.25)
        b.add_time("kernel.upgrade", 0.1)
        b.add_time("scalar.upgrade", 1.0)
        a.merge(b)
        assert a.timings_dict() == {
            "kernel.upgrade": 0.6,
            "scalar.upgrade": 1.0,
        }

    def test_timed_context_manager_records(self):
        c = Counters()
        with c.timed("section"):
            time.sleep(0.01)
        assert c.timings["section"] >= 0.009

    def test_timings_do_not_affect_equality(self):
        a, b = Counters(), Counters()
        a.heap_pushes = b.heap_pushes = 3
        a.add_time("kernel.upgrade", 0.5)
        assert a == b  # wall clocks are excluded from value equality

    def test_copy_carries_timings_independently(self):
        a = Counters()
        a.add_time("x", 1.0)
        b = a.copy()
        b.add_time("x", 1.0)
        assert a.timings["x"] == 1.0
        assert b.timings["x"] == 2.0

    def test_repr_shows_only_nonzero(self):
        c = Counters()
        c.upgrade_calls = 2
        text = repr(c)
        assert "upgrade_calls" in text
        assert "node_accesses" not in text


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed_s >= 0.009

    def test_reentrant_nesting(self):
        t = Timer()
        with t:
            time.sleep(0.01)
            with t:
                time.sleep(0.01)
            inner = t.elapsed_s
            assert inner >= 0.009
            assert t.depth == 1
        assert t.depth == 0
        # Outer span covers the inner one.
        assert t.elapsed_s >= inner + 0.009

    def test_total_counts_outermost_spans_only(self):
        t = Timer()
        with t:
            with t:
                time.sleep(0.005)
        first_total = t.total_s
        assert first_total == t.elapsed_s  # the inner span was not re-added
        with t:
            time.sleep(0.005)
        assert t.total_s >= first_total + 0.004

    def test_sequential_reuse(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        with t:
            time.sleep(0.002)
        assert t.total_s >= 0.003


class TestRunReport:
    def test_defaults(self):
        report = RunReport()
        assert report.algorithm == ""
        assert report.elapsed_s == 0.0
        assert isinstance(report.counters, Counters)
        assert report.extras == {}

    def test_independent_counter_instances(self):
        a, b = RunReport(), RunReport()
        a.counters.heap_pops = 5
        assert b.counters.heap_pops == 0
