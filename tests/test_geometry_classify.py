"""Tests for the D_D / D_I / D_A dimension classification (paper §III-B3)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DimensionalityError
from repro.geometry.classify import classify_dimensions

coord = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def corner_triples(draw, dims=3):
    t_low = [draw(coord) for _ in range(dims)]
    p_low = [draw(coord) for _ in range(dims)]
    p_high = [max(draw(coord), pl) for pl in p_low]
    return tuple(t_low), tuple(p_low), tuple(p_high)


class TestCases:
    def test_all_disadvantaged(self):
        c = classify_dimensions((1.0, 1.0), (0.1, 0.1), (0.5, 0.5))
        assert c.disadvantaged == (0, 1)
        assert c.all_disadvantaged
        assert not c.has_advantage

    def test_all_advantaged(self):
        c = classify_dimensions((0.0, 0.0), (0.5, 0.5), (0.9, 0.9))
        assert c.advantaged == (0, 1)
        assert c.has_advantage

    def test_all_incomparable(self):
        c = classify_dimensions((0.5, 0.5), (0.1, 0.1), (0.9, 0.9))
        assert c.incomparable == (0, 1)
        assert c.all_incomparable

    def test_mixed(self):
        c = classify_dimensions((1.0, 0.5, 0.0), (0.1, 0.1, 0.5), (0.5, 0.9, 0.9))
        assert c.disadvantaged == (0,)
        assert c.incomparable == (1,)
        assert c.advantaged == (2,)

    def test_boundary_equal_to_p_low_is_incomparable(self):
        c = classify_dimensions((0.1,), (0.1,), (0.9,))
        assert c.incomparable == (0,)

    def test_boundary_equal_to_p_high_is_incomparable(self):
        c = classify_dimensions((0.9,), (0.1,), (0.9,))
        assert c.incomparable == (0,)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            classify_dimensions((0.0,), (0.0, 1.0), (1.0, 2.0))


class TestProperties:
    @given(corner_triples())
    def test_partition_is_exhaustive_and_disjoint(self, triple):
        t_low, p_low, p_high = triple
        c = classify_dimensions(t_low, p_low, p_high)
        seen = sorted(c.disadvantaged + c.incomparable + c.advantaged)
        assert seen == list(range(len(t_low)))

    @given(corner_triples())
    def test_signature_identifies_split(self, triple):
        t_low, p_low, p_high = triple
        c = classify_dimensions(t_low, p_low, p_high)
        assert c.signature == (c.disadvantaged, c.incomparable)

    @given(corner_triples())
    def test_dims_property(self, triple):
        t_low, p_low, p_high = triple
        c = classify_dimensions(t_low, p_low, p_high)
        assert c.dims == len(t_low)
