"""Cross-algorithm agreement properties.

The paper (§III-B5 remark) states the probing and join approaches yield the
same upgrading results modulo ties.  With the corrected per-pair bounds this
must hold exactly on cost values; these hypothesis tests fuzz arbitrary
layouts across every algorithm variant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.api import top_k_upgrades
from repro.core.verify import brute_force_topk, verify_results
from repro.costs.model import paper_cost_model

coord = st.floats(
    min_value=0.05, max_value=2.0, allow_nan=False, allow_infinity=False
)
competitor_sets = st.lists(
    st.tuples(coord, coord), min_size=1, max_size=60
)
product_sets = st.lists(st.tuples(coord, coord), min_size=1, max_size=25)

VARIANTS = [
    ("join", "nlb"),
    ("join", "clb"),
    ("join", "alb"),
    ("join", "max"),
    ("probing", "clb"),
    ("basic-probing", "clb"),
]


@given(competitor_sets, product_sets, st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_all_variants_agree_with_oracle(competitors, products, k):
    model = paper_cost_model(2)
    oracle = brute_force_topk(competitors, products, model, k=k)
    expected = [r.cost for r in oracle]
    for method, bound in VARIANTS:
        outcome = top_k_upgrades(
            competitors,
            products,
            k=k,
            cost_model=model,
            method=method,
            bound=bound,
            max_entries=4,
        )
        got = [r.cost for r in outcome.results]
        assert np.allclose(got, expected), (method, bound, got, expected)
        verify_results(outcome.results, competitors, model)


@given(
    st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=40),
    st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=15),
)
@settings(max_examples=25, deadline=None)
def test_join_vs_probing_3d(competitors, products):
    model = paper_cost_model(3)
    join = top_k_upgrades(
        competitors, products, k=4, cost_model=model, method="join",
        bound="alb", max_entries=4,
    )
    probing = top_k_upgrades(
        competitors, products, k=4, cost_model=model, method="probing",
        max_entries=4,
    )
    assert np.allclose(join.costs, probing.costs)


@given(competitor_sets, product_sets)
@settings(max_examples=30, deadline=None)
def test_upgraded_points_escape_domination(competitors, products):
    model = paper_cost_model(2)
    outcome = top_k_upgrades(
        competitors, products, k=len(products), cost_model=model,
        method="join", max_entries=4,
    )
    verify_results(outcome.results, competitors, model)


@given(competitor_sets, product_sets)
@settings(max_examples=30, deadline=None)
def test_topk_is_prefix_of_full_ranking(competitors, products):
    model = paper_cost_model(2)
    full = top_k_upgrades(
        competitors, products, k=len(products), cost_model=model,
        method="probing", max_entries=4,
    )
    partial = top_k_upgrades(
        competitors, products, k=min(3, len(products)), cost_model=model,
        method="probing", max_entries=4,
    )
    assert np.allclose(
        partial.costs, full.costs[: len(partial.results)]
    )
