"""Tests for the Morton-curve skyline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.geometry.point import dominates
from repro.skyline.bnl import bnl_skyline
from repro.skyline.zorder import morton_codes, zorder_skyline

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.tuples(coord, coord), min_size=0, max_size=80)


class TestMortonCodes:
    def test_shape(self):
        pts = np.random.default_rng(1).random((50, 3))
        assert morton_codes(pts).shape == (50,)

    def test_empty(self):
        assert morton_codes(np.zeros((0, 2))).shape == (0,)

    def test_origin_is_minimal(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0]])
        codes = morton_codes(pts)
        assert codes[0] == codes.min()
        assert codes[2] == codes.max()

    def test_interleaving_2d_known_values(self):
        # 1-bit per dim over corners: codes are 0..3 in Z pattern.
        pts = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        codes = morton_codes(pts, bits=1)
        assert sorted(codes.tolist()) == [0, 1, 2, 3]
        assert codes[0] == 0 and codes[3] == 3

    def test_dominance_implies_code_order(self):
        rng = np.random.default_rng(2)
        pts = rng.random((200, 3))
        codes = morton_codes(pts)
        for i in range(0, 200, 7):
            for j in range(0, 200, 11):
                if dominates(tuple(pts[i]), tuple(pts[j])):
                    assert codes[i] <= codes[j]

    def test_bit_budget_validated(self):
        pts = np.zeros((2, 4))
        with pytest.raises(ConfigurationError):
            morton_codes(pts, bits=16)  # 4 * 16 = 64 > 63
        with pytest.raises(ConfigurationError):
            morton_codes(pts, bits=0)

    def test_shape_validated(self):
        with pytest.raises(ConfigurationError):
            morton_codes(np.zeros(5))


class TestZorderSkyline:
    def test_empty(self):
        assert zorder_skyline([]) == []

    def test_known_example(self):
        pts = [(1, 5), (2, 4), (3, 3), (2, 6), (5, 1), (4, 4)]
        assert sorted(zorder_skyline(pts)) == [
            (1, 5), (2, 4), (3, 3), (5, 1),
        ]

    def test_matches_bnl_on_random_data(self):
        pts = [tuple(p) for p in np.random.default_rng(3).random((400, 2))]
        assert sorted(zorder_skyline(pts)) == sorted(bnl_skyline(pts))

    def test_matches_bnl_3d(self):
        pts = [tuple(p) for p in np.random.default_rng(4).random((300, 3))]
        assert sorted(zorder_skyline(pts)) == sorted(bnl_skyline(pts))

    def test_coarse_quantization_still_exact(self):
        # Heavy cell collisions: correctness must not depend on bits.
        pts = [tuple(p) for p in np.random.default_rng(5).random((300, 2))]
        assert sorted(zorder_skyline(pts, bits=2)) == sorted(
            bnl_skyline(pts)
        )

    @given(point_lists, st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_matches_bnl_property(self, points, bits):
        assert sorted(zorder_skyline(points, bits=bits)) == sorted(
            set(bnl_skyline(points))
        )
