"""Smoke tests: every example script must run and print sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "hotel_upgrade.py",
        "wine_quality.py",
        "progressive_topk.py",
        "single_catalog.py",
        "market_session.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "upgrade phone" in out
    assert "rank" in out


def test_hotel_upgrade():
    out = run_example("hotel_upgrade.py")
    assert "Top-5 cheapest renovations" in out
    assert out.count("#") >= 5


@pytest.mark.slow
def test_wine_quality():
    out = run_example("wine_quality.py", timeout=600)
    assert "costs agree: True" in out
    for combo in ["'c,s'", "'c,t'", "'s,t'", "'c,s,t'"]:
        assert f"combo {combo}" in out


def test_progressive_topk():
    out = run_example("progressive_topk.py", timeout=600)
    assert "stopped after" in out
    assert "never fully processed" in out


@pytest.mark.slow
def test_single_catalog():
    out = run_example("single_catalog.py", timeout=600)
    assert "cheapest 5 upgrades" in out
    assert "next cheapest upgrade" in out


def test_market_session():
    out = run_example("market_session.py", timeout=600)
    assert "rival flagship launched" in out
    assert "committed upgrade" in out
    assert "retired product" in out
