"""Tests for Algorithm 4 (the best-first R-tree join)."""

import numpy as np
import pytest

from repro.core.join import JoinUpgrader
from repro.core.verify import brute_force_topk, verify_results
from repro.costs.model import paper_cost_model
from repro.data.generators import paper_workload
from repro.exceptions import ConfigurationError
from repro.rtree.tree import RTree

from conftest import make_mixed_instance

BOUNDS = ["nlb", "clb", "alb", "max"]


def build(competitors, products, max_entries=8):
    tree_p = RTree.bulk_load(competitors, max_entries=max_entries)
    tree_t = RTree.bulk_load(products, max_entries=max_entries)
    return tree_p, tree_t


class TestConfiguration:
    def test_unknown_bound(self):
        tree_p, tree_t = build([(0.5, 0.5)], [(1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            JoinUpgrader(tree_p, tree_t, paper_cost_model(2), bound="xxx")

    def test_unknown_lbc_mode(self):
        tree_p, tree_t = build([(0.5, 0.5)], [(1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            JoinUpgrader(
                tree_p, tree_t, paper_cost_model(2), lbc_mode="xxx"
            )

    def test_dimension_mismatch(self):
        tree_p = RTree.bulk_load([(0.5, 0.5)])
        tree_t = RTree.bulk_load([(1.0, 1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            JoinUpgrader(tree_p, tree_t, paper_cost_model(3))

    def test_invalid_k(self):
        tree_p, tree_t = build([(0.5, 0.5)], [(1.0, 1.0)])
        upgrader = JoinUpgrader(tree_p, tree_t, paper_cost_model(2))
        with pytest.raises(ConfigurationError):
            upgrader.run(0)


@pytest.mark.parametrize("bound", BOUNDS)
class TestCorrectness:
    def test_mixed_instance_matches_oracle(self, bound):
        competitors, products = make_mixed_instance(seed=5)
        model = paper_cost_model(2)
        tree_p, tree_t = build(competitors, products)
        oracle = brute_force_topk(competitors, products, model, k=8)
        outcome = JoinUpgrader(tree_p, tree_t, model, bound=bound).run(8)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )
        verify_results(outcome.results, competitors, model)

    def test_paper_layout_matches_oracle(self, bound):
        competitors, products = paper_workload(
            "independent", 400, 80, 3, seed=9
        )
        model = paper_cost_model(3)
        tree_p, tree_t = build(competitors, products)
        oracle = brute_force_topk(competitors, products, model, k=5)
        outcome = JoinUpgrader(tree_p, tree_t, model, bound=bound).run(5)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )

    def test_anti_correlated_layout(self, bound):
        competitors, products = paper_workload(
            "anti_correlated", 400, 60, 2, seed=11
        )
        model = paper_cost_model(2)
        tree_p, tree_t = build(competitors, products)
        oracle = brute_force_topk(competitors, products, model, k=4)
        outcome = JoinUpgrader(tree_p, tree_t, model, bound=bound).run(4)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )

    def test_results_stream_in_ascending_cost_order(self, bound):
        competitors, products = make_mixed_instance(seed=21)
        model = paper_cost_model(2)
        tree_p, tree_t = build(competitors, products)
        upgrader = JoinUpgrader(tree_p, tree_t, model, bound=bound)
        costs = [r.cost for r in upgrader.results()]
        assert len(costs) == len(products)
        assert costs == sorted(costs)


class TestEdgeCases:
    def test_empty_product_tree(self):
        tree_p = RTree.bulk_load([(0.5, 0.5)])
        upgrader = JoinUpgrader(tree_p, RTree(2), paper_cost_model(2))
        assert list(upgrader.results()) == []

    def test_empty_competitor_tree(self):
        tree_t = RTree.bulk_load([(1.0, 1.0), (2.0, 2.0)])
        upgrader = JoinUpgrader(RTree(2), tree_t, paper_cost_model(2))
        outcome = upgrader.run(2)
        assert [r.cost for r in outcome.results] == [0.0, 0.0]
        assert all(r.already_competitive for r in outcome.results)

    def test_k_exceeds_t(self):
        competitors, products = make_mixed_instance(seed=3, n_t=7)
        tree_p, tree_t = build(competitors, products)
        outcome = JoinUpgrader(tree_p, tree_t, paper_cost_model(2)).run(50)
        assert len(outcome.results) == 7

    def test_single_point_trees(self):
        tree_p, tree_t = build([(0.5, 0.5)], [(1.0, 1.0)])
        model = paper_cost_model(2)
        outcome = JoinUpgrader(tree_p, tree_t, model).run(1)
        oracle = brute_force_topk([(0.5, 0.5)], [(1.0, 1.0)], model, k=1)
        assert outcome.results[0].cost == pytest.approx(oracle[0].cost)

    def test_undominated_products_cost_zero(self):
        competitors = [(0.5, 0.5)]
        products = [(0.4, 0.6), (0.9, 0.9)]
        tree_p, tree_t = build(competitors, products)
        outcome = JoinUpgrader(tree_p, tree_t, paper_cost_model(2)).run(2)
        assert outcome.results[0].cost == 0.0
        assert outcome.results[0].record_id == 0

    def test_duplicate_products(self):
        competitors, _ = make_mixed_instance(seed=31)
        products = [(1.2, 1.2)] * 5
        tree_p, tree_t = build(competitors, products)
        outcome = JoinUpgrader(tree_p, tree_t, paper_cost_model(2)).run(5)
        costs = outcome.costs
        assert np.allclose(costs, costs[0])
        assert sorted(r.record_id for r in outcome.results) == list(range(5))


class TestReportsAndProgressiveness:
    def test_report_metadata(self):
        competitors, products = make_mixed_instance(seed=41)
        tree_p, tree_t = build(competitors, products)
        outcome = JoinUpgrader(
            tree_p, tree_t, paper_cost_model(2), bound="alb"
        ).run(5)
        assert outcome.report.algorithm == "join[alb]"
        times = outcome.report.extras["result_times"]
        assert len(times) == 5
        assert times == sorted(times)

    def test_early_stop_does_less_work(self):
        competitors, products = paper_workload(
            "independent", 1000, 300, 2, seed=13
        )
        model = paper_cost_model(2)
        tree_p, tree_t = build(competitors, products, max_entries=16)
        one = JoinUpgrader(tree_p, tree_t, model)
        one.run(1)
        pops_one = one.stats.heap_pops
        full = JoinUpgrader(tree_p, tree_t, model)
        full.run(300)
        assert pops_one < full.stats.heap_pops

    def test_stats_reset_between_runs(self):
        competitors, products = make_mixed_instance(seed=51)
        tree_p, tree_t = build(competitors, products)
        upgrader = JoinUpgrader(tree_p, tree_t, paper_cost_model(2))
        upgrader.run(1)
        first = upgrader.stats.heap_pops
        upgrader.run(1)
        assert upgrader.stats.heap_pops == first


class TestLbcModes:
    def test_corrected_matches_oracle_where_paper_mode_may_not(self):
        competitors, products = paper_workload(
            "anti_correlated", 2000, 150, 2, seed=1
        )
        model = paper_cost_model(2)
        tree_p, tree_t = build(competitors, products, max_entries=16)
        oracle = brute_force_topk(competitors, products, model, k=3)
        corrected = JoinUpgrader(
            tree_p, tree_t, model, lbc_mode="corrected"
        ).run(3)
        np.testing.assert_allclose(
            [r.cost for r in corrected.results], [r.cost for r in oracle]
        )
        paper = JoinUpgrader(tree_p, tree_t, model, lbc_mode="paper").run(3)
        # Paper mode still returns *valid* upgrades (never dominated) ...
        verify_results(paper.results, competitors, model)
        # ... but may rank costlier products first (the documented defect).
        assert [r.cost for r in paper.results][0] >= oracle[0].cost - 1e-9
