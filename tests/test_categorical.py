"""Tests for ordinal categorical attributes (§VI research direction)."""

import numpy as np
import pytest

from repro.core.api import top_k_upgrades
from repro.costs.attribute import LinearCost
from repro.costs.model import CostModel
from repro.data.categorical import OrdinalEncoder
from repro.exceptions import ConfigurationError
from repro.geometry.point import dominates


@pytest.fixture()
def stars():
    return OrdinalEncoder(["5-star", "4-star", "3-star", "2-star"])


class TestOrdinalEncoder:
    def test_best_category_is_smallest(self, stars):
        assert stars.encode("5-star") == 0.0
        assert stars.encode("2-star") == 3.0

    def test_round_trip(self, stars):
        for label in stars.categories:
            assert stars.decode(stars.encode(label)) == label

    def test_decode_snaps_epsilon_upgrades(self, stars):
        # Upgraded coordinates land at rank - eps; decode must recover the
        # category whose rank the algorithm targeted.
        assert stars.decode(1.0 - 1e-9) == "4-star"
        assert stars.decode(0.0 - 1e-9) == "5-star"

    def test_decode_clamps(self, stars):
        assert stars.decode(-5.0) == "5-star"
        assert stars.decode(99.0) == "2-star"

    def test_encode_many_decode_many(self, stars):
        labels = ["3-star", "5-star", "4-star"]
        assert stars.decode_many(stars.encode_many(labels)) == labels

    def test_encoding_preserves_preference_order(self, stars):
        ranks = stars.encode_many(list(stars.categories))
        assert ranks == sorted(ranks)

    def test_upgrade_steps(self, stars):
        assert stars.upgrade_steps("3-star", "5-star") == 2
        assert stars.upgrade_steps("5-star", "5-star") == 0
        assert stars.upgrade_steps("5-star", "2-star") == -3

    def test_unknown_label(self, stars):
        with pytest.raises(ConfigurationError):
            stars.encode("6-star")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OrdinalEncoder(["only-one"])
        with pytest.raises(ConfigurationError):
            OrdinalEncoder(["a", "b", "a"])

    def test_len_and_repr(self, stars):
        assert len(stars) == 4
        assert "5-star" in repr(stars)


class TestMixedNumericCategoricalPipeline:
    """End-to-end: hotels with a star category and a numeric price."""

    def test_upgrade_over_mixed_attributes(self, stars):
        competitors_raw = [
            ("5-star", 0.9),
            ("4-star", 0.5),
            ("3-star", 0.2),
        ]
        products_raw = [("2-star", 0.8), ("3-star", 0.95)]
        encode = lambda rows: np.array(  # noqa: E731
            [(stars.encode(c), price) for c, price in rows]
        )
        competitors = encode(competitors_raw)
        products = encode(products_raw)
        model = CostModel(
            [LinearCost(10.0, 2.0), LinearCost(5.0, 3.0)]
        )
        outcome = top_k_upgrades(
            products=products,
            competitors=competitors,
            k=2,
            cost_model=model,
        )
        for r in outcome.results:
            for c in competitors:
                assert not dominates(tuple(c), r.upgraded)
            # The categorical coordinate decodes to a real category.
            assert stars.decode(r.upgraded[0]) in stars.categories
