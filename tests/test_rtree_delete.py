"""R-tree deletion and tree-condensation tests."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)


class TestDelete:
    def test_delete_existing(self):
        tree = RTree(2, max_entries=4)
        tree.insert((0.1, 0.1), 0)
        tree.insert((0.2, 0.2), 1)
        assert tree.delete((0.1, 0.1), 0)
        assert len(tree) == 1
        assert list(tree.iter_points()) == [((0.2, 0.2), 1)]

    def test_delete_missing_point_returns_false(self):
        tree = RTree(2)
        tree.insert((0.1, 0.1), 0)
        assert not tree.delete((0.9, 0.9), 0)
        assert len(tree) == 1

    def test_delete_wrong_record_id_returns_false(self):
        tree = RTree(2)
        tree.insert((0.1, 0.1), 0)
        assert not tree.delete((0.1, 0.1), 99)

    def test_delete_to_empty(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5), 0)
        assert tree.delete((0.5, 0.5), 0)
        assert tree.is_empty()
        validate_rtree(tree)

    def test_delete_from_deep_tree_condenses(self):
        tree = RTree(2, max_entries=4)
        rng = np.random.default_rng(11)
        pts = [tuple(p) for p in rng.random((200, 2))]
        for i, p in enumerate(pts):
            tree.insert(p, i)
        # Remove most points; the tree must shrink and stay valid.
        for i, p in enumerate(pts[:180]):
            assert tree.delete(p, i)
        assert len(tree) == 20
        validate_rtree(tree)
        remaining = sorted(p for p, _ in tree.iter_points())
        assert remaining == sorted(pts[180:])

    def test_delete_duplicate_removes_one(self):
        tree = RTree(2, max_entries=4)
        tree.insert((0.5, 0.5), 0)
        tree.insert((0.5, 0.5), 1)
        assert tree.delete((0.5, 0.5), 0)
        assert len(tree) == 1
        assert list(tree.iter_points()) == [((0.5, 0.5), 1)]

    @given(
        st.lists(st.tuples(coord, coord), min_size=5, max_size=80),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_insert_delete_workload(self, points, data):
        tree = RTree(2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert(p, i)
        alive = dict(enumerate(points))
        n_deletes = data.draw(
            st.integers(0, len(points)), label="n_deletes"
        )
        victims = data.draw(
            st.permutations(sorted(alive)), label="victims"
        )[:n_deletes]
        for rid in victims:
            assert tree.delete(alive[rid], rid)
            del alive[rid]
            validate_rtree(tree)
        assert sorted((p, i) for i, p in alive.items()) == sorted(
            (p, i) for p, i in tree.iter_points()
        )
