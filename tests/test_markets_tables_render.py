"""Tests for the market generators, paper tables, and chart rendering."""

import numpy as np
import pytest

from repro.bench.figures import run_figure
from repro.bench.render import render_series_chart, render_speedups
from repro.bench.tables import TABLE_IDS, format_table
from repro.core.api import top_k_upgrades
from repro.data.markets import (
    HOTEL_MARKET_ORIENTATIONS,
    PHONE_MARKET_ORIENTATIONS,
    hotel_market,
    phone_market,
    split_by_brand,
)
from repro.data.normalize import orient_minimize
from repro.exceptions import ConfigurationError


class TestPhoneMarket:
    def test_shapes_and_ranges(self):
        raw, orientations = phone_market(500, seed=1)
        assert raw.shape == (500, 3)
        assert orientations == PHONE_MARKET_ORIENTATIONS
        weight, standby, camera = raw[:, 0], raw[:, 1], raw[:, 2]
        assert weight.min() >= 70.0
        assert standby.min() > 0
        assert camera.min() >= 0.3

    def test_weight_battery_tradeoff(self):
        raw, _ = phone_market(3000, seed=2)
        rho = np.corrcoef(raw[:, 0], raw[:, 1])[0, 1]
        assert rho > 0.5  # heavier phones carry bigger batteries

    def test_deterministic(self):
        a, _ = phone_market(100, seed=5)
        b, _ = phone_market(100, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            phone_market(0)


class TestHotelMarket:
    def test_shapes_and_ranges(self):
        raw, orientations = hotel_market(400, seed=1)
        assert raw.shape == (400, 3)
        assert orientations == HOTEL_MARKET_ORIENTATIONS
        assert raw[:, 0].min() >= 25.0          # nightly rate floor
        assert raw[:, 2].min() >= 3.0           # rating floor
        assert raw[:, 2].max() <= 10.0

    def test_rating_price_relation(self):
        raw, _ = hotel_market(3000, seed=2)
        rho = np.corrcoef(raw[:, 0], raw[:, 2])[0, 1]
        assert rho > 0.4  # better-rated hotels charge more


class TestSplitByBrand:
    def test_partition(self):
        raw, _ = hotel_market(200, seed=3)
        competitors, own, ids = split_by_brand(raw, 0.2, seed=3)
        assert len(own) == 40
        assert len(competitors) == 160
        np.testing.assert_array_equal(raw[ids], own)

    def test_fraction_validation(self):
        raw, _ = hotel_market(10, seed=3)
        with pytest.raises(ConfigurationError):
            split_by_brand(raw, 0.0)
        with pytest.raises(ConfigurationError):
            split_by_brand(raw, 1.0)

    def test_end_to_end_upgrade_pipeline(self):
        raw, orientations = phone_market(400, seed=7)
        oriented = orient_minimize(raw, orientations)
        competitors, own, _ = split_by_brand(oriented, 0.1, seed=7)
        from repro.costs.attribute import LinearCost
        from repro.costs.model import CostModel

        model = CostModel([LinearCost(0.0, 1.0)] * 3)
        outcome = top_k_upgrades(
            competitors, own, k=3, cost_model=model, method="join"
        )
        assert len(outcome.results) == 3
        assert outcome.costs == sorted(outcome.costs)


class TestPaperTables:
    @pytest.mark.parametrize("table_id", TABLE_IDS)
    def test_renders(self, table_id):
        text = format_table(table_id)
        assert f"Table {table_id}" in text

    def test_table_i_values(self):
        text = format_table("I")
        assert "phone 1" in text and "140" in text and "200" in text

    def test_table_iii_combos(self):
        text = format_table("III")
        for combo in ("c,s", "c,t", "s,t", "c,s,t"):
            assert combo in text

    def test_table_iv_defaults_marked(self):
        text = format_table("IV")
        assert "*1000000*" in text
        assert "*2*" in text

    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            format_table("VI")


class TestRendering:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_figure("fig9c", scale=2000, quick=True)

    def test_chart_contains_bars_and_values(self, figure):
        chart = render_series_chart(figure)
        assert "█" in chart
        assert "join-alb" in chart
        assert "log scale" in chart

    def test_speedups(self, figure):
        rows = render_speedups(figure, baseline="join-nlb")
        assert len(rows) == 2  # quick mode: endpoints
        for _, factors in rows:
            assert set(factors) == {"join-clb", "join-alb"}
            assert all(f > 0 for f in factors.values())

    def test_speedups_unknown_baseline(self, figure):
        with pytest.raises(KeyError):
            render_speedups(figure, baseline="nope")
