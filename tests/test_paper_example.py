"""The paper's running example (Tables I-II) as executable assertions.

The introduction states, for the oriented phone data:

* phones 1, 3, 5 form the skyline of P;
* phone A is dominated by phones 1, 3, 5, and 6;
* phone B is dominated by all phones in P;
* phone C is dominated by all phones in P except phone 1;
* phone D is dominated by phones 1, 4, and 5.
"""

import pytest

from repro.core.api import top_k_upgrades
from repro.core.verify import verify_results
from repro.data.phones import phone_example
from repro.geometry.point import dominates
from repro.skyline.bnl import bnl_skyline


@pytest.fixture(scope="module")
def phones():
    p_points, t_points, p_names, t_names = phone_example()
    p = {name: tuple(pt) for name, pt in zip(p_names, p_points)}
    t = {name: tuple(pt) for name, pt in zip(t_names, t_points)}
    return p, t


class TestTableFacts:
    def test_skyline_of_p(self, phones):
        p, _ = phones
        sky = set(bnl_skyline(list(p.values())))
        expected = {p["phone 1"], p["phone 3"], p["phone 5"]}
        assert sky == expected

    def test_phone_a_dominators(self, phones):
        p, t = phones
        dominators = {
            name for name, pt in p.items() if dominates(pt, t["phone A"])
        }
        assert dominators == {"phone 1", "phone 3", "phone 5", "phone 6"}

    def test_phone_b_dominated_by_all(self, phones):
        p, t = phones
        assert all(dominates(pt, t["phone B"]) for pt in p.values())

    def test_phone_c_dominators(self, phones):
        p, t = phones
        dominators = {
            name for name, pt in p.items() if dominates(pt, t["phone C"])
        }
        assert dominators == set(p) - {"phone 1"}

    def test_phone_d_dominators(self, phones):
        p, t = phones
        dominators = {
            name for name, pt in p.items() if dominates(pt, t["phone D"])
        }
        assert dominators == {"phone 1", "phone 4", "phone 5"}


class TestUpgradingThePhones:
    def test_every_phone_upgradable(self, phones, linear_model_3d):
        p, t = phones
        competitors = list(p.values())
        products = list(t.values())
        outcome = top_k_upgrades(
            competitors,
            products,
            k=4,
            cost_model=linear_model_3d,
            method="join",
        )
        assert len(outcome.results) == 4
        assert all(r.cost > 0 for r in outcome.results)
        verify_results(outcome.results, competitors, linear_model_3d)

    def test_join_and_probing_agree_on_phones(self, phones, linear_model_3d):
        p, t = phones
        join = top_k_upgrades(
            list(p.values()), list(t.values()), k=4,
            cost_model=linear_model_3d, method="join",
        )
        probing = top_k_upgrades(
            list(p.values()), list(t.values()), k=4,
            cost_model=linear_model_3d, method="probing",
        )
        assert join.costs == pytest.approx(probing.costs)
