"""Tests for R-tree statistics and the R*-style split."""

import math

import numpy as np

from repro.geometry.mbr import MBR
from repro.instrumentation import Counters
from repro.rtree.query import range_query
from repro.rtree.split import get_split_function, rstar_split
from repro.rtree.stats import (
    collect_stats,
    estimate_skyline_size,
    estimate_window_accesses,
    sample_skyline_size,
)
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

from test_rtree_split import entries_from


class TestCollectStats:
    def test_empty_tree(self):
        stats = collect_stats(RTree(2))
        assert stats.points == 0
        assert stats.height == 1

    def test_counts_consistent(self):
        pts = np.random.default_rng(5).random((500, 2))
        tree = RTree.bulk_load(pts, max_entries=16)
        stats = collect_stats(tree)
        assert stats.points == 500
        assert stats.height == tree.height
        assert stats.levels[0].entries == 500
        assert stats.levels[0].nodes >= 500 // 16
        assert stats.node_count == sum(
            s.nodes for s in stats.levels.values()
        )

    def test_bulk_load_fills_leaves_well(self):
        pts = np.random.default_rng(6).random((512, 2))
        tree = RTree.bulk_load(pts, max_entries=16)
        stats = collect_stats(tree)
        assert stats.leaf_fill >= 0.9 * 16

    def test_summary_string(self):
        tree = RTree.bulk_load(np.random.default_rng(7).random((50, 2)))
        text = collect_stats(tree).summary()
        assert "height=" in text and "points=50" in text

    def test_bulk_load_packs_tighter_than_inserts(self):
        pts = np.random.default_rng(8).random((600, 2))
        bulk = RTree.bulk_load(pts, max_entries=8)
        dynamic = RTree(2, max_entries=8)
        for i, p in enumerate(pts):
            dynamic.insert(tuple(p), i)
        bulk_stats = collect_stats(bulk)
        dyn_stats = collect_stats(dynamic)
        # STR fills leaves to capacity; split-driven trees average ~60-70%.
        assert bulk_stats.leaf_fill > dyn_stats.leaf_fill
        assert bulk_stats.node_count < dyn_stats.node_count


def exact_skyline_size(points):
    skyline = []
    for p in points:
        if any(np.all(s <= p) and np.any(s < p) for s in skyline):
            continue
        skyline = [
            s
            for s in skyline
            if not (np.all(p <= s) and np.any(p < s))
        ]
        skyline.append(p)
    return len(skyline)


class TestWindowAccessEstimator:
    def test_matches_measured_accesses_on_uniform_data(self):
        rng = np.random.default_rng(42)
        tree = RTree.bulk_load(rng.random((2000, 2)), max_entries=16)
        stats = collect_stats(tree)
        for q in (0.05, 0.1, 0.2):
            measured = []
            for _ in range(200):
                lo = rng.random(2) * (1 - q)
                counters = Counters()
                range_query(tree, MBR(lo, lo + q), counters)
                measured.append(counters.node_accesses)
            mean = float(np.mean(measured))
            estimated = estimate_window_accesses(stats, (q, q), (1.0, 1.0))
            assert 0.75 * mean <= estimated <= 1.25 * mean

    def test_infers_domain_from_root_when_omitted(self):
        rng = np.random.default_rng(43)
        tree = RTree.bulk_load(rng.random((1500, 2)), max_entries=16)
        stats = collect_stats(tree)
        explicit = estimate_window_accesses(stats, (0.1, 0.1), (1.0, 1.0))
        inferred = estimate_window_accesses(stats, (0.1, 0.1))
        # The root MBR nearly covers the unit square on uniform data.
        assert abs(inferred - explicit) / explicit < 0.25

    def test_tiny_window_costs_about_one_root_to_leaf_path(self):
        rng = np.random.default_rng(44)
        tree = RTree.bulk_load(rng.random((4000, 2)), max_entries=16)
        stats = collect_stats(tree)
        estimated = estimate_window_accesses(stats, (0.0, 0.0), (1.0, 1.0))
        assert tree.height * 0.5 <= estimated <= tree.height * 2.5

    def test_whole_domain_window_visits_every_node(self):
        rng = np.random.default_rng(45)
        tree = RTree.bulk_load(rng.random((1000, 2)), max_entries=8)
        stats = collect_stats(tree)
        estimated = estimate_window_accesses(stats, (1.0, 1.0), (1.0, 1.0))
        assert estimated >= 0.95 * stats.node_count

    def test_empty_tree_costs_one_access(self):
        assert estimate_window_accesses(
            collect_stats(RTree(2)), (0.1, 0.1), (1.0, 1.0)
        ) == 1.0


class TestSkylineSizeEstimators:
    def test_analytic_formula(self):
        assert estimate_skyline_size(0, 2) == 0.0
        assert estimate_skyline_size(1, 4) == 1.0
        assert estimate_skyline_size(1000, 1) == 1.0
        n = 5000
        assert estimate_skyline_size(n, 3) == (
            math.log(n) ** 2 / math.factorial(2)
        )

    def test_analytic_within_band_of_measured_uniform(self):
        rng = np.random.default_rng(46)
        for n, d in [(500, 2), (2000, 3), (2000, 4)]:
            exact = exact_skyline_size(rng.random((n, d)))
            estimated = estimate_skyline_size(n, d)
            assert exact / 3.0 <= estimated <= exact * 3.0

    def test_sample_estimator_within_band_of_measured(self):
        rng = np.random.default_rng(47)
        for n, d in [(500, 2), (2000, 4)]:
            pts = rng.random((n, d))
            exact = exact_skyline_size(pts)
            tree = RTree.bulk_load(pts, max_entries=16)
            sampled = sample_skyline_size(tree, d)
            assert exact / 3.0 <= sampled <= exact * 3.0

    def test_sample_estimator_sees_through_correlation(self):
        # Strongly correlated data has a tiny skyline; the analytic
        # i.i.d. prior overshoots but the sample estimator must not.
        rng = np.random.default_rng(48)
        base = rng.random(3000)
        pts = np.stack(
            [base + 0.01 * rng.random(3000) for _ in range(3)], axis=1
        )
        tree = RTree.bulk_load(pts, max_entries=16)
        sampled = sample_skyline_size(tree, 3)
        exact = exact_skyline_size(pts)
        assert sampled <= max(5 * exact, 20)
        assert sampled < estimate_skyline_size(3000, 3)

    def test_sample_estimator_empty_tree(self):
        assert sample_skyline_size(RTree(2), 2) == 0.0

    def test_level_extents_populated(self):
        rng = np.random.default_rng(49)
        tree = RTree.bulk_load(rng.random((800, 2)), max_entries=8)
        stats = collect_stats(tree)
        for level in stats.levels.values():
            extents = level.avg_extents()
            assert len(extents) == 2
            assert all(e >= 0 for e in extents)
        # Leaf entries are points: degenerate extents.
        assert stats.levels[0].avg_extents() == (0.0, 0.0)


class TestRStarSplit:
    def test_registered(self):
        assert get_split_function("rstar") is rstar_split

    def test_respects_minimum_and_partitions(self):
        entries = entries_from(
            [(float(i % 7), float(i % 5)) for i in range(20)]
        )
        a, b = rstar_split(entries, 6)
        assert len(a) >= 6 and len(b) >= 6
        assert sorted(e.record_id for e in a + b) == list(range(20))

    def test_separates_clusters(self):
        left = [(i * 0.01, i * 0.02) for i in range(6)]
        right = [(100 + i * 0.01, i * 0.02) for i in range(6)]
        a, b = rstar_split(entries_from(left + right), 4)
        groups = sorted(
            ({e.point[0] < 50 for e in g} for g in (a, b)),
            key=lambda s: min(s),
        )
        assert groups[0] == {False} and groups[1] == {True}

    def test_tree_with_rstar_split_stays_valid(self):
        tree = RTree(2, max_entries=8, split="rstar")
        rng = np.random.default_rng(9)
        pts = rng.random((300, 2))
        for i, p in enumerate(pts):
            tree.insert(tuple(p), i)
        validate_rtree(tree)
        assert sorted(p for p, _ in tree.iter_points()) == sorted(
            map(tuple, pts)
        )

    def test_rstar_no_worse_overlap_than_linear(self):
        rng = np.random.default_rng(10)
        pts = rng.random((800, 2))
        trees = {}
        for split in ("rstar", "linear"):
            tree = RTree(2, max_entries=8, split=split)
            for i, p in enumerate(pts):
                tree.insert(tuple(p), i)
            trees[split] = collect_stats(tree).sibling_overlap_area
        assert trees["rstar"] <= trees["linear"] * 1.25
