"""Tests for R-tree statistics and the R*-style split."""

import numpy as np

from repro.rtree.split import get_split_function, rstar_split
from repro.rtree.stats import collect_stats
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

from test_rtree_split import entries_from


class TestCollectStats:
    def test_empty_tree(self):
        stats = collect_stats(RTree(2))
        assert stats.points == 0
        assert stats.height == 1

    def test_counts_consistent(self):
        pts = np.random.default_rng(5).random((500, 2))
        tree = RTree.bulk_load(pts, max_entries=16)
        stats = collect_stats(tree)
        assert stats.points == 500
        assert stats.height == tree.height
        assert stats.levels[0].entries == 500
        assert stats.levels[0].nodes >= 500 // 16
        assert stats.node_count == sum(
            s.nodes for s in stats.levels.values()
        )

    def test_bulk_load_fills_leaves_well(self):
        pts = np.random.default_rng(6).random((512, 2))
        tree = RTree.bulk_load(pts, max_entries=16)
        stats = collect_stats(tree)
        assert stats.leaf_fill >= 0.9 * 16

    def test_summary_string(self):
        tree = RTree.bulk_load(np.random.default_rng(7).random((50, 2)))
        text = collect_stats(tree).summary()
        assert "height=" in text and "points=50" in text

    def test_bulk_load_packs_tighter_than_inserts(self):
        pts = np.random.default_rng(8).random((600, 2))
        bulk = RTree.bulk_load(pts, max_entries=8)
        dynamic = RTree(2, max_entries=8)
        for i, p in enumerate(pts):
            dynamic.insert(tuple(p), i)
        bulk_stats = collect_stats(bulk)
        dyn_stats = collect_stats(dynamic)
        # STR fills leaves to capacity; split-driven trees average ~60-70%.
        assert bulk_stats.leaf_fill > dyn_stats.leaf_fill
        assert bulk_stats.node_count < dyn_stats.node_count


class TestRStarSplit:
    def test_registered(self):
        assert get_split_function("rstar") is rstar_split

    def test_respects_minimum_and_partitions(self):
        entries = entries_from(
            [(float(i % 7), float(i % 5)) for i in range(20)]
        )
        a, b = rstar_split(entries, 6)
        assert len(a) >= 6 and len(b) >= 6
        assert sorted(e.record_id for e in a + b) == list(range(20))

    def test_separates_clusters(self):
        left = [(i * 0.01, i * 0.02) for i in range(6)]
        right = [(100 + i * 0.01, i * 0.02) for i in range(6)]
        a, b = rstar_split(entries_from(left + right), 4)
        groups = sorted(
            ({e.point[0] < 50 for e in g} for g in (a, b)),
            key=lambda s: min(s),
        )
        assert groups[0] == {False} and groups[1] == {True}

    def test_tree_with_rstar_split_stays_valid(self):
        tree = RTree(2, max_entries=8, split="rstar")
        rng = np.random.default_rng(9)
        pts = rng.random((300, 2))
        for i, p in enumerate(pts):
            tree.insert(tuple(p), i)
        validate_rtree(tree)
        assert sorted(p for p, _ in tree.iter_points()) == sorted(
            map(tuple, pts)
        )

    def test_rstar_no_worse_overlap_than_linear(self):
        rng = np.random.default_rng(10)
        pts = rng.random((800, 2))
        trees = {}
        for split in ("rstar", "linear"):
            tree = RTree(2, max_entries=8, split=split)
            for i, p in enumerate(pts):
                tree.insert(tuple(p), i)
            trees[split] = collect_stats(tree).sibling_overlap_area
        assert trees["rstar"] <= trees["linear"] * 1.25
