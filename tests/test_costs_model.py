"""Tests for integration functions and the product cost model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.costs.attribute import LinearCost, ReciprocalCost
from repro.costs.integration import SumIntegration, WeightedSumIntegration
from repro.costs.model import CostModel, check_monotonic, paper_cost_model
from repro.exceptions import CostFunctionError, DimensionalityError

unit = st.floats(
    min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestIntegrations:
    def test_sum(self):
        assert SumIntegration()([1.0, 2.0, 3.5]) == 6.5

    def test_weighted_sum(self):
        w = WeightedSumIntegration([1.0, 0.0, 2.0])
        assert w([1.0, 100.0, 3.0]) == 7.0

    def test_weighted_sum_validation(self):
        with pytest.raises(CostFunctionError):
            WeightedSumIntegration([])
        with pytest.raises(CostFunctionError):
            WeightedSumIntegration([-1.0, 1.0])
        with pytest.raises(CostFunctionError):
            WeightedSumIntegration([0.0, 0.0])

    def test_weighted_sum_arity_check(self):
        w = WeightedSumIntegration([1.0, 2.0])
        with pytest.raises(CostFunctionError):
            w([1.0])

    def test_describe(self):
        assert SumIntegration().describe() == "sum"
        assert "wsum" in WeightedSumIntegration([1, 2]).describe()


class TestCostModel:
    def test_product_cost_is_sum_of_attribute_costs(self):
        model = paper_cost_model(2, offset=1e-3)
        p = (0.5, 0.25)
        expected = 1 / 0.501 + 1 / 0.251
        assert model.product_cost(p) == pytest.approx(expected)

    def test_upgrade_cost_is_delta(self, cost_model_2d):
        old, new = (1.0, 1.0), (0.5, 1.0)
        delta = cost_model_2d.product_cost(new) - cost_model_2d.product_cost(
            old
        )
        assert cost_model_2d.upgrade_cost(old, new) == pytest.approx(delta)

    def test_dimensionality_checked(self, cost_model_2d):
        with pytest.raises(DimensionalityError):
            cost_model_2d.product_cost((1.0, 2.0, 3.0))

    def test_attribute_cost_accessor(self, cost_model_2d):
        assert cost_model_2d.attribute_cost(0, 0.999) == pytest.approx(1.0)

    def test_needs_at_least_one_attribute(self):
        with pytest.raises(CostFunctionError):
            CostModel([])

    def test_weight_arity_checked_at_construction(self):
        with pytest.raises(CostFunctionError):
            CostModel(
                [ReciprocalCost(), ReciprocalCost()],
                WeightedSumIntegration([1.0]),
            )

    def test_describe_mentions_parts(self, cost_model_2d):
        text = cost_model_2d.describe()
        assert "sum" in text and "/(v+" in text

    @given(st.tuples(unit, unit, unit), st.tuples(unit, unit, unit))
    def test_monotonic_under_dominance(self, p, q):
        model = paper_cost_model(3)
        if all(a <= b for a, b in zip(p, q)) and p != q:
            assert model.product_cost(p) >= model.product_cost(q) - 1e-12


class TestVectorization:
    def test_supports_vectorization_true_for_shipped_costs(self):
        assert paper_cost_model(3).supports_vectorization()

    def test_supports_vectorization_false_for_custom(self):
        class Odd(LinearCost):
            def vector(self, values):
                raise NotImplementedError

        model = CostModel([Odd(1.0, 1.0)])
        assert not model.supports_vectorization()

    def test_vector_product_cost_matches_scalar(self):
        model = paper_cost_model(3)
        pts = np.random.default_rng(1).random((40, 3)) + 0.1
        vec = model.vector_product_cost(pts)
        scalar = [model.product_cost(tuple(p)) for p in pts]
        np.testing.assert_allclose(vec, scalar, rtol=1e-12)

    def test_vector_product_cost_weighted(self):
        model = CostModel(
            [ReciprocalCost(), ReciprocalCost()],
            WeightedSumIntegration([2.0, 0.5]),
        )
        pts = np.array([[0.5, 0.5], [1.0, 0.25]])
        vec = model.vector_product_cost(pts)
        scalar = [model.product_cost(tuple(p)) for p in pts]
        np.testing.assert_allclose(vec, scalar, rtol=1e-12)

    def test_vector_product_cost_shape_check(self):
        model = paper_cost_model(2)
        with pytest.raises(DimensionalityError):
            model.vector_product_cost(np.zeros((3, 5)))


class TestMonotonicChecker:
    def test_accepts_paper_model(self):
        check_monotonic(paper_cost_model(2), (0.1, 0.1), (1.0, 1.0))

    def test_rejects_increasing_cost(self):
        class Increasing(LinearCost):
            def __call__(self, value):
                return value  # larger (worse) value costs more: invalid

        model = CostModel([Increasing(), LinearCost()])
        with pytest.raises(CostFunctionError):
            check_monotonic(model, (0.0, 0.0), (1.0, 1.0))

    def test_bounds_validation(self):
        with pytest.raises(DimensionalityError):
            check_monotonic(paper_cost_model(2), (0.0,), (1.0,))
        with pytest.raises(CostFunctionError):
            check_monotonic(paper_cost_model(1), (1.0,), (1.0,))
        with pytest.raises(CostFunctionError):
            check_monotonic(
                paper_cost_model(1), (0.0,), (1.0,), samples_per_dim=1
            )


class TestPaperCostModel:
    def test_dims_validated(self):
        with pytest.raises(CostFunctionError):
            paper_cost_model(0)

    def test_weighted_variant(self):
        model = paper_cost_model(2, weights=[1.0, 3.0])
        assert isinstance(model.integration, WeightedSumIntegration)
        p = (0.999, 0.999)
        assert model.product_cost(p) == pytest.approx(4.0)
