"""Unit and property tests for MBRs."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DimensionalityError
from repro.geometry.mbr import MBR

coord = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


@st.composite
def mbrs_2d(draw):
    a, b = draw(coord), draw(coord)
    c, d = draw(coord), draw(coord)
    return MBR((min(a, b), min(c, d)), (max(a, b), max(c, d)))


class TestConstruction:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            MBR((1, 0), (0, 1))

    def test_mismatched_corners_rejected(self):
        with pytest.raises(DimensionalityError):
            MBR((0,), (1, 2))

    def test_from_point_is_degenerate(self):
        m = MBR.from_point((1, 2))
        assert m.low == m.high == (1.0, 2.0)
        assert m.area() == 0.0

    def test_from_points_is_tight(self):
        m = MBR.from_points([(0, 5), (3, 1), (2, 2)])
        assert m.low == (0.0, 1.0)
        assert m.high == (3.0, 5.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_union_all(self):
        m = MBR.union_all([MBR((0, 0), (1, 1)), MBR((2, -1), (3, 0.5))])
        assert m.low == (0.0, -1.0)
        assert m.high == (3.0, 1.0)


class TestMeasures:
    def test_area(self):
        assert MBR((0, 0), (2, 3)).area() == 6.0

    def test_margin(self):
        assert MBR((0, 0), (2, 3)).margin() == 5.0

    def test_center(self):
        assert MBR((0, 0), (2, 4)).center() == (1.0, 2.0)

    def test_enlargement(self):
        base = MBR((0, 0), (1, 1))
        other = MBR((2, 0), (3, 1))
        assert base.enlargement(other) == pytest.approx(2.0)

    def test_overlap_area_disjoint(self):
        assert MBR((0, 0), (1, 1)).overlap_area(MBR((2, 2), (3, 3))) == 0.0

    def test_overlap_area_partial(self):
        a = MBR((0, 0), (2, 2))
        b = MBR((1, 1), (3, 3))
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_min_distance_inside_is_zero(self):
        assert MBR((0, 0), (2, 2)).min_distance((1, 1)) == 0.0

    def test_min_distance_outside(self):
        assert MBR((0, 0), (1, 1)).min_distance((2, 2)) == pytest.approx(2.0)


class TestPredicates:
    def test_contains_point_boundary(self):
        m = MBR((0, 0), (1, 1))
        assert m.contains_point((0, 0))
        assert m.contains_point((1, 1))
        assert not m.contains_point((1.0001, 0.5))

    def test_contains_mbr(self):
        outer = MBR((0, 0), (4, 4))
        inner = MBR((1, 1), (2, 2))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_intersects_touching_edges(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((1, 0), (2, 1))
        assert a.intersects(b)

    @given(mbrs_2d(), mbrs_2d())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbrs_2d(), mbrs_2d())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(mbrs_2d(), mbrs_2d())
    def test_union_area_at_least_max(self, a, b):
        assert a.union(b).area() >= max(a.area(), b.area()) - 1e-9

    @given(mbrs_2d(), mbrs_2d())
    def test_overlap_bounded_by_each_area(self, a, b):
        ov = a.overlap_area(b)
        assert ov <= a.area() + 1e-9
        assert ov <= b.area() + 1e-9

    @given(mbrs_2d(), st.tuples(coord, coord))
    def test_extended_covers_point(self, m, p):
        assert m.extended(p).contains_point(p)


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((0, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != MBR((0, 0), (1, 2))

    def test_repr_mentions_corners(self):
        assert "low" in repr(MBR((0, 0), (1, 1)))
