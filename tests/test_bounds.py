"""Tests for the lower-bound machinery (LBC, NLB/CLB/ALB/MAX).

The central property: a *valid* per-pair bound never exceeds the true
(Algorithm 1) upgrade cost of any product in ``e_T`` with respect to the
points inside ``e_P``.  The corrected mode must satisfy it always; the
paper mode is demonstrated to violate it on the documented counterexamples.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    BOUND_NAMES,
    aggressive_bound,
    conservative_bound,
    join_list_bound,
    lbc,
    max_bound,
    naive_bound,
    pair_bounds_vector,
    signature_of,
    supports_vector_bounds,
)
from repro.core.upgrade import upgrade
from repro.costs.attribute import ReciprocalCost
from repro.costs.integration import WeightedSumIntegration
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import ConfigurationError
from repro.geometry.classify import classify_dimensions
from repro.geometry.mbr import MBR
from repro.geometry.point import dominates
from repro.skyline.bnl import bnl_skyline

coord = st.floats(
    min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestLbcCases:
    def setup_method(self):
        self.model = paper_cost_model(2)

    def test_case1_advantage_is_zero(self):
        bound, _ = lbc((0.1, 0.9), (0.5, 0.2), (0.8, 0.4), self.model)
        assert bound == 0.0

    def test_case2_all_incomparable_is_zero(self):
        bound, _ = lbc((0.5, 0.5), (0.2, 0.2), (0.8, 0.8), self.model)
        assert bound == 0.0

    def test_case3_all_disadvantaged_positive(self):
        bound, _ = lbc((1.0, 1.0), (0.2, 0.2), (0.5, 0.5), self.model)
        assert bound > 0.0

    def test_case3_corrected_is_single_dim_escape(self):
        t_low, p_high = (1.0, 1.0), (0.5, 0.6)
        bound, _ = lbc(t_low, (0.2, 0.2), p_high, self.model)
        escapes = []
        for i in range(2):
            candidate = list(t_low)
            candidate[i] = p_high[i]
            escapes.append(
                self.model.product_cost(candidate)
                - self.model.product_cost(t_low)
            )
        assert bound == pytest.approx(min(escapes))

    def test_case3_paper_is_full_corner_jump(self):
        t_low, p_high = (1.0, 1.0), (0.5, 0.6)
        bound, _ = lbc(
            t_low, (0.2, 0.2), p_high, self.model, mode="paper"
        )
        expected = self.model.product_cost(p_high) - self.model.product_cost(
            t_low
        )
        assert bound == pytest.approx(expected)

    def test_case4_one_incomparable_positive(self):
        # dim0 disadvantaged, dim1 incomparable.
        bound, _ = lbc((1.0, 0.5), (0.2, 0.2), (0.5, 0.8), self.model)
        assert bound > 0.0

    def test_case4_corrected_two_incomparable_is_zero(self):
        model = paper_cost_model(3)
        # dim0 disadvantaged; dims 1, 2 incomparable: content may contain
        # no dominator of e_T.min, so only 0 is sound.
        bound, _ = lbc(
            (1.0, 1.0, 1.0), (0.5, 0.5, 0.5), (0.5, 2.0, 2.0), model
        )
        assert bound == 0.0

    def test_case4_paper_two_incomparable_is_positive(self):
        model = paper_cost_model(3)
        bound, _ = lbc(
            (1.0, 1.0, 1.0),
            (0.5, 0.5, 0.5),
            (0.5, 2.0, 2.0),
            model,
            mode="paper",
        )
        assert bound > 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            lbc((1.0,), (0.5,), (0.6,), paper_cost_model(1), mode="bogus")

    def test_signature_matches_classification(self):
        _, sig = lbc((1.0, 0.5), (0.2, 0.2), (0.5, 0.8), self.model)
        c = classify_dimensions((1.0, 0.5), (0.2, 0.2), (0.5, 0.8))
        assert sig == signature_of(c)


def true_group_cost_lower_envelope(t_points, p_points, model):
    """Smallest Algorithm-1 cost among products in the group vs p_points."""
    costs = []
    for t in t_points:
        dominators = [p for p in p_points if dominates(p, t)]
        skyline = bnl_skyline(dominators)
        cost, _ = upgrade(skyline, t, model)
        costs.append(cost)
    return min(costs)


class TestCorrectedLbcIsValid:
    """corrected-mode LBC <= the true cost of every product in the node."""

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
        st.lists(
            st.tuples(
                st.floats(min_value=1.05, max_value=2.0),
                st.floats(min_value=1.05, max_value=2.0),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_all_disadvantaged_layout(self, p_points, t_points):
        model = paper_cost_model(2)
        p_box = MBR.from_points(p_points)
        t_box = MBR.from_points(t_points)
        bound, _ = lbc(t_box.low, p_box.low, p_box.high, model)
        envelope = true_group_cost_lower_envelope(t_points, p_points, model)
        assert bound <= envelope + 1e-9

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_layout(self, p_points, t_points):
        model = paper_cost_model(2)
        p_box = MBR.from_points(p_points)
        t_box = MBR.from_points(t_points)
        bound, _ = lbc(t_box.low, p_box.low, p_box.high, model)
        envelope = true_group_cost_lower_envelope(t_points, p_points, model)
        assert bound <= envelope + 1e-9


class TestPaperLbcOverestimates:
    """The documented counterexample: the paper's Case 3 is not a bound."""

    def test_case3_counterexample(self):
        model = paper_cost_model(2)
        p_points = [(0.5, 0.5)]
        t_points = [(1.0, 1.0)]
        bound, _ = lbc((1.0, 1.0), (0.5, 0.5), (0.5, 0.5), model, mode="paper")
        envelope = true_group_cost_lower_envelope(t_points, p_points, model)
        assert bound > envelope + 1e-6  # overestimates: NOT a lower bound

    def test_corrected_fixes_the_counterexample(self):
        model = paper_cost_model(2)
        p_points = [(0.5, 0.5)]
        t_points = [(1.0, 1.0)]
        bound, _ = lbc((1.0, 1.0), (0.5, 0.5), (0.5, 0.5), model)
        envelope = true_group_cost_lower_envelope(t_points, p_points, model)
        assert bound <= envelope + 1e-9

    def test_case4_counterexample_undominated_corner(self):
        model = paper_cost_model(3)
        p_points = [(0.5, 0.5, 2.0), (0.5, 2.0, 0.5)]
        t = (1.0, 1.0, 1.0)
        assert not any(dominates(p, t) for p in p_points)
        box = MBR.from_points(p_points)
        paper_bound, _ = lbc(t, box.low, box.high, model, mode="paper")
        corrected_bound, _ = lbc(t, box.low, box.high, model)
        assert paper_bound > 0.0  # claims a cost where none exists
        assert corrected_bound == 0.0


class TestJoinListBounds:
    PAIRS = [
        (0.0, b"a"),
        (3.0, b"b"),
        (1.5, b"b"),
        (2.0, b"c"),
    ]

    def test_naive_is_min(self):
        assert naive_bound(b for b, _ in self.PAIRS) == 0.0

    def test_naive_empty_is_zero(self):
        assert naive_bound([]) == 0.0

    def test_conservative_ignores_zeros(self):
        assert conservative_bound(b for b, _ in self.PAIRS) == 1.5

    def test_conservative_all_zero(self):
        assert conservative_bound([0.0, 0.0]) == 0.0

    def test_aggressive_partitions_by_signature(self):
        # partition b: max(3.0, 1.5) = 3.0; partition c: 2.0 -> min = 2.0.
        assert aggressive_bound(self.PAIRS) == 2.0

    def test_aggressive_empty(self):
        assert aggressive_bound([]) == 0.0

    def test_max_bound(self):
        assert max_bound(b for b, _ in self.PAIRS) == 3.0
        assert max_bound([]) == 0.0

    def test_ordering_nlb_le_clb_le_alb_le_max(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            pairs = [
                (float(max(0.0, rng.normal(1, 1))), bytes([rng.integers(0, 3)]))
                for _ in range(rng.integers(1, 10))
            ]
            nlb = naive_bound(b for b, _ in pairs)
            clb = conservative_bound(b for b, _ in pairs)
            alb = aggressive_bound(pairs)
            mx = max_bound(b for b, _ in pairs)
            assert nlb <= clb + 1e-12
            assert clb <= alb + 1e-12
            assert alb <= mx + 1e-12

    def test_dispatch(self):
        for name in BOUND_NAMES:
            assert join_list_bound(name, self.PAIRS) >= 0.0
        with pytest.raises(ConfigurationError):
            join_list_bound("bogus", self.PAIRS)


class TestVectorizedBounds:
    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    def test_matches_scalar(self, mode):
        rng = np.random.default_rng(9)
        model = paper_cost_model(3)
        t_low = tuple(rng.random(3) + 0.3)
        lows = rng.random((40, 3))
        highs = lows + rng.random((40, 3)) * 0.5
        vector = pair_bounds_vector(t_low, lows, highs, model, mode=mode)
        for i in range(40):
            scalar_bound, scalar_sig = lbc(
                t_low, tuple(lows[i]), tuple(highs[i]), model, mode=mode
            )
            assert vector[i][0] == pytest.approx(scalar_bound, abs=1e-9)
            assert vector[i][1] == scalar_sig

    def test_weighted_model(self):
        model = CostModel(
            [ReciprocalCost(), ReciprocalCost()],
            WeightedSumIntegration([2.0, 0.5]),
        )
        assert supports_vector_bounds(model)
        t_low = (1.0, 1.0)
        lows = np.array([[0.1, 0.1], [0.3, 0.2]])
        highs = np.array([[0.5, 0.4], [0.9, 0.8]])
        vector = pair_bounds_vector(t_low, lows, highs, model)
        for i in range(2):
            scalar_bound, _ = lbc(
                t_low, tuple(lows[i]), tuple(highs[i]), model
            )
            assert vector[i][0] == pytest.approx(scalar_bound, abs=1e-12)

    def test_empty(self):
        model = paper_cost_model(2)
        assert pair_bounds_vector(
            (1.0, 1.0), np.zeros((0, 2)), np.zeros((0, 2)), model
        ) == []

    def test_unknown_mode(self):
        model = paper_cost_model(2)
        with pytest.raises(ConfigurationError):
            pair_bounds_vector(
                (1.0, 1.0),
                np.zeros((1, 2)),
                np.ones((1, 2)),
                model,
                mode="nope",
            )
