"""Worker-pool supervision and ReadWriteLock behaviour under failure.

Regression suite for the pre-reliability bug where a raising handler
killed its worker thread for good: each crash silently shrank the pool
until nothing drained the queue.
"""

import threading
import time

import pytest

from repro.instrumentation import Counters
from repro.serve.pool import ReadWriteLock, WorkerPool


class TestSupervision:
    def test_raising_handler_does_not_kill_worker(self):
        """The original bug: one bad batch must not cost a worker."""
        processed = []
        release = threading.Event()

        def handler(batch, counters):
            if batch[0] == "bad":
                raise RuntimeError("handler crash")
            processed.extend(batch)
            release.set()

        pool = WorkerPool(handler, workers=1, batch_max=1)
        try:
            pool.submit_many(["bad"])
            pool.submit_many(["good"])  # same (sole) worker must drain it
            assert release.wait(timeout=5.0)
            assert processed == ["good"]
            assert pool.crash_count == 1
            assert pool.alive_workers == 1
        finally:
            pool.close()

    def test_crashes_are_counted_and_reported(self):
        failures = []
        drained = threading.Event()

        def handler(batch, counters):
            if batch[0] == "last":
                drained.set()
                return
            raise ValueError(f"bad batch {batch}")

        pool = WorkerPool(
            handler,
            workers=2,
            batch_max=1,
            on_batch_error=lambda batch, exc: failures.append((batch, exc)),
        )
        try:
            pool.submit_many(["a", "b", "c"])
            pool.submit_many(["last"])
            assert drained.wait(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while pool.crash_count < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert pool.crash_count == 3
            assert sorted(batch[0] for batch, _ in failures) == [
                "a",
                "b",
                "c",
            ]
            assert all(isinstance(exc, ValueError) for _, exc in failures)
            assert pool.alive_workers == 2
        finally:
            pool.close()

    def test_capacity_survives_sustained_crashing(self):
        """Every batch crashes; the pool must still drain all of them."""
        seen = []
        done = threading.Event()

        def handler(batch, counters):
            seen.extend(batch)
            if len(seen) >= 50:
                done.set()
            raise RuntimeError("always fails")

        pool = WorkerPool(handler, workers=3, batch_max=4)
        try:
            for lo in range(0, 50, 10):
                pool.submit_many(list(range(lo, lo + 10)))
            assert done.wait(timeout=5.0)
            assert sorted(seen) == list(range(50))
            assert pool.alive_workers == 3
        finally:
            assert pool.close() == 0

    def test_raising_error_callback_is_swallowed(self):
        ok = threading.Event()

        def handler(batch, counters):
            if batch[0] == "ok":
                ok.set()
                return
            raise RuntimeError("crash")

        def bad_callback(batch, exc):
            raise RuntimeError("callback is broken too")

        pool = WorkerPool(
            handler, workers=1, batch_max=1, on_batch_error=bad_callback
        )
        try:
            pool.submit_many(["crash"])
            pool.submit_many(["ok"])
            assert ok.wait(timeout=5.0)
        finally:
            pool.close()


class TestClose:
    def test_clean_close_returns_zero(self):
        pool = WorkerPool(lambda batch, counters: None, workers=3)
        assert pool.close() == 0
        assert pool.stuck_workers == []

    def test_close_is_idempotent(self):
        pool = WorkerPool(lambda batch, counters: None, workers=2)
        assert pool.close() == 0
        assert pool.close() == 0

    def test_stuck_worker_is_accounted_not_waited_forever(self):
        """A wedged handler can't hang close(); it is named and counted."""
        release = threading.Event()

        def handler(batch, counters):
            release.wait(10.0)

        pool = WorkerPool(handler, workers=2, batch_max=1)
        try:
            pool.submit_many(["wedge"])
            deadline = time.monotonic() + 5.0
            while pool.queue_depth and time.monotonic() < deadline:
                time.sleep(0.005)
            start = time.monotonic()
            stuck = pool.close(timeout=0.2)
            assert time.monotonic() - start < 2.0
            assert stuck == 1
            assert len(pool.stuck_workers) == 1
            assert pool.stuck_workers[0].startswith("skyup-serve-")
        finally:
            release.set()
        # Once the handler returns, a re-close reaps the straggler.
        assert pool.close(timeout=5.0) == 0
        assert pool.stuck_workers == []

    def test_submit_after_close_raises(self):
        from repro.exceptions import EngineClosedError

        pool = WorkerPool(lambda batch, counters: None, workers=1)
        pool.close()
        with pytest.raises(EngineClosedError):
            pool.submit_many(["x"])


class TestWorkerCounters:
    def test_each_worker_gets_its_own_counters(self):
        pool = WorkerPool(lambda batch, counters: None, workers=4)
        try:
            assert len(pool.worker_counters) == 4
            assert all(
                isinstance(c, Counters) for c in pool.worker_counters
            )
            assert len(set(map(id, pool.worker_counters))) == 4
        finally:
            pool.close()


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers in simultaneously or timeout

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        order = []
        in_write = threading.Event()

        def writer():
            with lock.write_locked():
                in_write.set()
                time.sleep(0.05)
                order.append("write")

        def reader():
            in_write.wait(5.0)
            with lock.read_locked():
                order.append("read")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(5.0)
        tr.join(5.0)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer beats readers that arrive
        while it waits — a query stream cannot starve updates."""
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        release_first_reader = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                release_first_reader.wait(5.0)
            order.append("r1-out")

        def writer():
            reader_in.wait(5.0)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(5.0)
            time.sleep(0.02)  # let the writer reach its wait loop
            with lock.read_locked():
                order.append("r2")

        threads = [
            threading.Thread(target=f)
            for f in (first_reader, writer, late_reader)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)
        release_first_reader.set()
        for t in threads:
            t.join(timeout=5.0)
        assert order == ["r1-out", "writer", "r2"]

    def test_read_lock_released_when_block_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.read_locked():
                raise RuntimeError("reader body failed")
        with lock.write_locked():  # would deadlock if the read leaked
            pass

    def test_write_lock_released_when_block_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.write_locked():
                raise RuntimeError("writer body failed")
        with lock.read_locked():  # would deadlock if the write leaked
            pass

    def test_interleaved_stress_makes_progress(self):
        lock = ReadWriteLock()
        counter = {"value": 0}

        def writer():
            for _ in range(50):
                with lock.write_locked():
                    counter["value"] += 1

        def reader():
            for _ in range(50):
                with lock.read_locked():
                    assert 0 <= counter["value"] <= 100

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert counter["value"] == 100
