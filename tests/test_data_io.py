"""Tests for CSV persistence."""

import numpy as np
import pytest

from repro.data.io import load_points_csv, save_points_csv
from repro.exceptions import ConfigurationError


class TestRoundTrip:
    def test_without_header(self, tmp_path):
        pts = np.random.default_rng(1).random((20, 3))
        path = tmp_path / "pts.csv"
        save_points_csv(path, pts)
        loaded, attributes = load_points_csv(path)
        np.testing.assert_array_equal(loaded, pts)
        assert attributes is None

    def test_with_header(self, tmp_path):
        pts = np.array([[1.5, -2.0], [0.0, 3.25]])
        path = tmp_path / "pts.csv"
        save_points_csv(path, pts, attributes=["alpha", "beta"])
        loaded, attributes = load_points_csv(path)
        np.testing.assert_array_equal(loaded, pts)
        assert attributes == ("alpha", "beta")

    def test_exact_float_round_trip(self, tmp_path):
        pts = np.array([[1 / 3, 2 / 7], [1e-15, 123456.789012345]])
        path = tmp_path / "pts.csv"
        save_points_csv(path, pts)
        loaded, _ = load_points_csv(path)
        np.testing.assert_array_equal(loaded, pts)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "pts.csv"
        save_points_csv(path, np.zeros((1, 1)))
        assert path.exists()


class TestValidation:
    def test_save_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_points_csv(tmp_path / "x.csv", np.zeros(3))

    def test_save_rejects_header_arity(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_points_csv(
                tmp_path / "x.csv", np.zeros((2, 2)), attributes=["one"]
            )

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_points_csv(path)

    def test_load_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2\n3,4,5\n")
        with pytest.raises(ConfigurationError):
            load_points_csv(path)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("1,2\n\n3,4\n")
        loaded, _ = load_points_csv(path)
        assert loaded.shape == (2, 2)
