"""Tests for the Markdown report generator."""

import json

import pytest

from repro.bench.report import (
    figure_markdown,
    load_results,
    render_report,
    speedup_line,
)
from repro.exceptions import ConfigurationError


@pytest.fixture()
def results_dir(tmp_path):
    data = {
        "figure_id": "fig6a",
        "title": "vary |P|",
        "xlabel": "|P|",
        "series": {
            "probing": [
                {"x": "100", "seconds": 2.0, "counters": {}},
                {"x": "200", "seconds": 4.0, "counters": {}},
            ],
            "join-nlb": [
                {"x": "100", "seconds": 0.5, "counters": {}},
                {"x": "200", "seconds": 0.5, "counters": {}},
            ],
        },
        "notes": ["scaled down"],
    }
    (tmp_path / "fig6a.json").write_text(json.dumps(data))
    return tmp_path


class TestLoadResults:
    def test_loads_by_figure_id(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"fig6a"}

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results(tmp_path)


class TestRendering:
    def test_figure_markdown_table(self, results_dir):
        md = figure_markdown(load_results(results_dir)["fig6a"])
        assert "### fig6a" in md
        assert "| |P| | probing | join-nlb |" in md
        assert "| 100 | 2.000s | 0.500s |" in md
        assert "*scaled down*" in md

    def test_speedup_line(self, results_dir):
        data = load_results(results_dir)["fig6a"]
        line = speedup_line(data, "probing", "join-nlb")
        assert "4.0x-8.0x faster" in line and "join-nlb" in line

    def test_speedup_line_missing_series(self, results_dir):
        data = load_results(results_dir)["fig6a"]
        assert speedup_line(data, "probing", "ghost") == ""

    def test_render_report(self, results_dir):
        report = render_report(results_dir)
        assert report.startswith("## Measured data")
        assert "fig6a" in report

    def test_render_real_results_if_present(self):
        import pathlib

        real = pathlib.Path("benchmarks/results")
        if not any(real.glob("fig*.json")):
            pytest.skip("no recorded results in this checkout")
        report = render_report(real)
        assert "fig4" in report
        assert report.count("###") >= 10
