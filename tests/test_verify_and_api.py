"""Tests for the verification oracle, result validator, and top-level API."""

import numpy as np
import pytest

from repro.core.api import top_k_upgrades
from repro.core.types import UpgradeConfig, UpgradeResult
from repro.core.verify import brute_force_topk, verify_results
from repro.costs.model import paper_cost_model
from repro.exceptions import (
    ConfigurationError,
    EmptyDatasetError,
    SkyUpError,
)

from conftest import make_mixed_instance


class TestBruteForce:
    def test_orders_by_cost_then_id(self):
        competitors = [(0.5, 0.5)]
        products = [(0.9, 0.9), (0.6, 0.6), (0.4, 0.9)]
        model = paper_cost_model(2)
        results = brute_force_topk(competitors, products, model, k=3)
        costs = [r.cost for r in results]
        assert costs == sorted(costs)
        assert results[0].record_id == 2  # undominated -> cost 0

    def test_empty_competitors(self):
        model = paper_cost_model(2)
        results = brute_force_topk([], [(1.0, 1.0)], model, k=1)
        assert results[0].cost == 0.0


class TestVerifyResults:
    def test_accepts_valid(self):
        model = paper_cost_model(2)
        competitors = [(0.5, 0.5)]
        results = brute_force_topk(competitors, [(1.0, 1.0)], model, k=1)
        verify_results(results, competitors, model)

    def test_rejects_dominated_upgrade(self):
        model = paper_cost_model(2)
        competitors = [(0.5, 0.5)]
        bogus = UpgradeResult(0, (1.0, 1.0), (0.9, 0.9), 0.1)
        with pytest.raises(SkyUpError, match="still dominated"):
            verify_results([bogus], competitors, model)

    def test_rejects_wrong_cost(self):
        model = paper_cost_model(2)
        competitors = [(0.5, 0.5)]
        upgraded = (0.4, 1.0)
        bogus = UpgradeResult(0, (1.0, 1.0), upgraded, 123.0)
        with pytest.raises(SkyUpError, match="deviates"):
            verify_results([bogus], competitors, model)

    def test_empty_competitors_accepts_identity(self):
        model = paper_cost_model(2)
        ok = UpgradeResult(0, (1.0, 1.0), (1.0, 1.0), 0.0)
        verify_results([ok], [], model)


class TestTopKUpgradesApi:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            top_k_upgrades([(0.5, 0.5)], [(1.0, 1.0)], method="quantum")

    def test_empty_products_rejected(self):
        with pytest.raises(EmptyDatasetError):
            top_k_upgrades([(0.5, 0.5)], [])

    def test_empty_competitors_all_free(self):
        outcome = top_k_upgrades([], [(1.0, 1.0), (2.0, 2.0)], k=2)
        assert outcome.costs == [0.0, 0.0]

    def test_default_cost_model_is_papers(self):
        outcome = top_k_upgrades([(0.5, 0.5)], [(1.0, 1.0)], k=1)
        model = paper_cost_model(2)
        expected = brute_force_topk([(0.5, 0.5)], [(1.0, 1.0)], model, k=1)
        assert outcome.results[0].cost == pytest.approx(expected[0].cost)

    def test_docstring_example(self):
        P = np.array([[0.2, 0.8], [0.5, 0.5], [0.8, 0.2]])
        T = np.array([[0.9, 0.9], [0.6, 0.6]])
        outcome = top_k_upgrades(P, T, k=1)
        assert outcome.results[0].record_id == 1

    @pytest.mark.parametrize(
        "method", ["join", "probing", "basic-probing"]
    )
    def test_methods_consistent(self, method):
        competitors, products = make_mixed_instance(seed=61, n_p=80, n_t=25)
        model = paper_cost_model(2)
        oracle = brute_force_topk(competitors, products, model, k=5)
        outcome = top_k_upgrades(
            competitors, products, k=5, cost_model=model, method=method
        )
        np.testing.assert_allclose(
            outcome.costs, [r.cost for r in oracle]
        )

    def test_config_passthrough(self):
        competitors = [(0.5, 0.5)]
        products = [(1.0, 1.0)]
        strict = top_k_upgrades(
            competitors, products, config=UpgradeConfig(validate=True)
        )
        extended = top_k_upgrades(
            competitors, products, config=UpgradeConfig(extended=True)
        )
        assert extended.results[0].cost <= strict.results[0].cost + 1e-12


class TestOutcomeContainer:
    def test_iteration_and_len(self):
        outcome = top_k_upgrades([(0.5, 0.5)], [(1.0, 1.0), (1.5, 1.5)], k=2)
        assert len(outcome) == 2
        assert [r.record_id for r in outcome] == [
            r.record_id for r in outcome.results
        ]

    def test_already_competitive_flag(self):
        outcome = top_k_upgrades([(5.0, 5.0)], [(1.0, 1.0)], k=1)
        assert outcome.results[0].already_competitive
