"""White-box tests for Algorithm 4's internals.

These pin the heuristics (3/4), the join-list refinement semantics
(lines 22-31), and the antichain leaf fast-path — behaviours that the
black-box agreement tests exercise but do not isolate.
"""

import numpy as np
import pytest

from repro.core.dominators import get_dominating_skyline_multi
from repro.core.join import JoinUpgrader, _VECTOR_JL_FROM
from repro.costs.model import paper_cost_model
from repro.geometry.point import dominates
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def leaf_entry(point, rid=0):
    return Entry.for_point(tuple(point), rid)


def node_entry(points):
    node = Node(0, [leaf_entry(p, i) for i, p in enumerate(points)])
    return Entry.for_node(node)


@pytest.fixture()
def upgrader():
    tree_p = RTree.bulk_load([(0.5, 0.5)])
    tree_t = RTree.bulk_load([(1.5, 1.5)])
    return JoinUpgrader(tree_p, tree_t, paper_cost_model(2))


class TestPickCompetitorEntry:
    def _jl(self, upgrader, e_t, entries):
        pairs = upgrader._pair_bounds(e_t, entries)
        return entries, pairs

    def test_clb_picks_min_positive_nonleaf(self, upgrader):
        e_t = node_entry([(1.5, 1.5)])
        near = node_entry([(0.9, 0.9)])    # small positive bound
        far = node_entry([(0.1, 0.1)])     # large positive bound
        jl, pairs = self._jl(upgrader, e_t, [far, near])
        expandable = [e for e in jl if not e.is_leaf_entry]
        picked = upgrader._pick_competitor_entry(jl, pairs, expandable)
        assert picked is near

    def test_max_picks_largest(self, upgrader):
        upgrader.bound = "max"
        e_t = node_entry([(1.5, 1.5)])
        near = node_entry([(0.9, 0.9)])
        far = node_entry([(0.1, 0.1)])
        jl, pairs = self._jl(upgrader, e_t, [far, near])
        picked = upgrader._pick_competitor_entry(jl, pairs, jl)
        assert picked is far

    def test_leaf_entries_never_picked(self, upgrader):
        e_t = node_entry([(1.5, 1.5)])
        point = leaf_entry((0.2, 0.2))
        inner = node_entry([(0.9, 0.9)])
        jl, pairs = self._jl(upgrader, e_t, [point, inner])
        expandable = [e for e in jl if not e.is_leaf_entry]
        picked = upgrader._pick_competitor_entry(jl, pairs, expandable)
        assert picked is inner

    def test_alb_picks_entry_matching_aggregate(self, upgrader):
        upgrader.bound = "alb"
        e_t = node_entry([(1.5, 1.5)])
        # Two signature partitions; ALB = min over partitions of max.
        a1 = node_entry([(0.3, 0.3)])
        a2 = node_entry([(0.2, 0.2)])
        jl, pairs = self._jl(upgrader, e_t, [a1, a2])
        picked = upgrader._pick_competitor_entry(jl, pairs, jl)
        assert picked in (a1, a2)


class TestRefineJoinList:
    def test_dominated_child_dropped(self, upgrader):
        e_t = node_entry([(1.5, 1.5)])
        strong = node_entry([(0.1, 0.1)])  # its max dominates everything
        parent = node_entry([(0.8, 0.8)])  # child dominated by strong
        jl = [strong, parent]
        pairs = upgrader._pair_bounds(e_t, jl)
        new_jl, new_pairs = upgrader._refine_join_list(
            e_t, jl, pairs, parent
        )
        assert new_jl == [strong]
        assert len(new_pairs) == 1

    def test_child_drops_dominated_survivors(self, upgrader):
        e_t = node_entry([(1.5, 1.5)])
        weak = node_entry([(0.9, 0.9)])
        parent = node_entry([(0.1, 0.1)])  # child dominates weak wholesale
        jl = [weak, parent]
        pairs = upgrader._pair_bounds(e_t, jl)
        new_jl, _ = upgrader._refine_join_list(e_t, jl, pairs, parent)
        assert len(new_jl) == 1
        assert new_jl[0].is_leaf_entry
        assert new_jl[0].point == (0.1, 0.1)

    def test_children_outside_adr_filtered(self, upgrader):
        e_t = node_entry([(1.5, 1.5)])
        parent = node_entry([(0.5, 0.5), (2.5, 2.5)])  # second is outside
        jl = [parent]
        pairs = upgrader._pair_bounds(e_t, jl)
        new_jl, _ = upgrader._refine_join_list(e_t, jl, pairs, parent)
        assert [e.point for e in new_jl] == [(0.5, 0.5)]

    def test_vector_and_scalar_paths_agree(self, upgrader):
        rng = np.random.default_rng(12)
        e_t = node_entry([(1.5, 1.5)])
        base_points = [tuple(p) for p in rng.random((_VECTOR_JL_FROM + 8, 2))]
        parent_points = [tuple(p * 0.5) for p in rng.random((6, 2))]
        # Scalar path: a small join list below the vector threshold.
        small_jl = [leaf_entry(p, i) for i, p in enumerate(base_points[:4])]
        parent = node_entry(parent_points)
        small = small_jl + [parent]
        pairs = upgrader._pair_bounds(e_t, small)
        scalar_jl, _ = upgrader._refine_join_list(e_t, small, pairs, parent)
        # Vector path: same content padded past the threshold with the
        # first entries duplicated at distinct coordinates.
        big_jl = [leaf_entry(p, i) for i, p in enumerate(base_points)]
        big = big_jl + [parent]
        pairs_big = upgrader._pair_bounds(e_t, big)
        vector_jl, _ = upgrader._refine_join_list(e_t, big, pairs_big, parent)
        # Shared prefix entries must receive identical keep/drop decisions.
        scalar_kept = {e.point for e in scalar_jl if e.is_leaf_entry}
        vector_kept = {e.point for e in vector_jl if e.is_leaf_entry}
        for p in base_points[:4]:
            assert (p in scalar_kept) == (p in vector_kept)


class TestLeafFastPath:
    def test_antichain_fast_path_matches_traversal(self, upgrader):
        rng = np.random.default_rng(7)
        # Build an antichain join list large enough for the fast path.
        pts = sorted(
            {(round(x, 3), round(1.0 - x, 3)) for x in rng.random(40)}
        )
        jl = [leaf_entry(p, i) for i, p in enumerate(pts)]
        assert len(jl) >= _VECTOR_JL_FROM
        t = (0.9, 0.9)
        fast = upgrader._leaf_dominator_skyline(jl, t)
        slow = get_dominating_skyline_multi(jl, t)
        assert sorted(fast) == sorted(slow)
        for p in fast:
            assert dominates(p, t)

    def test_mixed_jl_uses_traversal(self, upgrader):
        jl = [leaf_entry((0.2, 0.2))] * (_VECTOR_JL_FROM + 1)
        jl.append(node_entry([(0.1, 0.5), (0.5, 0.1)]))
        t = (1.0, 1.0)
        result = upgrader._leaf_dominator_skyline(jl, t)
        assert sorted(result) == [(0.1, 0.5), (0.2, 0.2), (0.5, 0.1)]

    def test_small_jl_uses_traversal(self, upgrader):
        jl = [leaf_entry((0.3, 0.3)), leaf_entry((0.6, 0.2))]
        result = upgrader._leaf_dominator_skyline(jl, (1.0, 1.0))
        assert sorted(result) == [(0.3, 0.3), (0.6, 0.2)]
