"""Tests for the UpgradeEngine: correctness, batching, deadlines, metrics."""

import threading

import numpy as np
import pytest

from repro.core.dominators import get_dominating_skyline
from repro.core.session import MarketSession
from repro.core.upgrade import upgrade
from repro.exceptions import (
    ConfigurationError,
    EngineClosedError,
    EngineOverloadedError,
)
from repro.instrumentation import Counters
from repro.serve import (
    EngineConfig,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)


def make_session(seed=11, n_p=200, n_t=50, dims=2):
    rng = np.random.default_rng(seed)
    return MarketSession.from_points(
        rng.random((n_p, dims)), 1.0 + rng.random((n_t, dims)),
        max_entries=8,
    )


@pytest.fixture()
def session():
    return make_session()


@pytest.fixture()
def engine(session):
    with UpgradeEngine(
        session, EngineConfig(workers=2, batch_max=16)
    ) as eng:
        yield eng


class TestCorrectness:
    def test_topk_matches_session(self, session, engine):
        response = engine.query(TopKQuery(k=7))
        assert not response.partial
        assert [r.cost for r in response.results] == pytest.approx(
            session.top_k(7).costs
        )

    def test_product_query_matches_direct_computation(self, session, engine):
        for pid in (0, 5, 17):
            point = session.product_point(pid)
            skyline = session.dominator_skyline(point)
            cost, upgraded = upgrade(
                skyline, point, session.cost_model, session.config
            )
            response = engine.query(ProductQuery(pid))
            (result,) = response.results
            assert result.record_id == pid
            assert result.cost == pytest.approx(cost)
            assert result.upgraded == upgraded

    def test_unknown_product_raises(self, engine):
        with pytest.raises(ConfigurationError):
            engine.query(ProductQuery(10_000))

    def test_empty_catalog(self):
        session = MarketSession.from_points(
            np.random.default_rng(0).random((20, 2)), []
        )
        with UpgradeEngine(session, EngineConfig(workers=0)) as engine:
            response = engine.query(TopKQuery(k=3))
            assert response.results == [] and not response.partial
            # Exhausted-empty prefixes are cacheable too.
            assert engine.query(TopKQuery(k=3)).cache_hit


class TestCaching:
    def test_repeat_topk_hits_cache(self, engine):
        first = engine.query(TopKQuery(k=5))
        second = engine.query(TopKQuery(k=5))
        assert not first.cache_hit and second.cache_hit
        assert [r.cost for r in second.results] == [
            r.cost for r in first.results
        ]

    def test_smaller_k_served_from_prefix(self, engine):
        engine.query(TopKQuery(k=8))
        response = engine.query(TopKQuery(k=3))
        assert response.cache_hit and len(response.results) == 3

    def test_repeat_product_query_hits_cache(self, engine):
        assert not engine.query(ProductQuery(4)).cache_hit
        assert engine.query(ProductQuery(4)).cache_hit

    def test_cache_disabled_never_hits(self, session):
        with UpgradeEngine(
            session, EngineConfig(workers=0, cache=False)
        ) as engine:
            engine.query(TopKQuery(k=3))
            assert not engine.query(TopKQuery(k=3)).cache_hit
            engine.query(ProductQuery(1))
            assert not engine.query(ProductQuery(1)).cache_hit

    def test_irrelevant_competitor_keeps_caches_warm(self, session, engine):
        engine.query(TopKQuery(k=4))
        engine.query(ProductQuery(2))
        # Far outside every product's ADR and dominance region.
        engine.add_competitor((5.0, 5.0))
        topk = engine.query(TopKQuery(k=4))
        prod = engine.query(ProductQuery(2))
        assert topk.cache_hit and prod.cache_hit
        assert [r.cost for r in topk.results] == pytest.approx(
            session.top_k(4).costs
        )

    def test_relevant_competitor_invalidates_and_stays_correct(
        self, session, engine
    ):
        stale_topk = engine.query(TopKQuery(k=4))
        engine.query(ProductQuery(2))
        cid = engine.add_competitor((0.01, 0.01))  # dominates everything
        topk = engine.query(TopKQuery(k=4))
        prod = engine.query(ProductQuery(2))
        assert not topk.cache_hit and not prod.cache_hit
        assert [r.cost for r in topk.results] == pytest.approx(
            session.top_k(4).costs
        )
        # And removal restores the old answers (fresh recomputation).
        engine.remove_competitor(cid)
        restored = engine.query(TopKQuery(k=4))
        assert not restored.cache_hit
        assert [r.cost for r in restored.results] == pytest.approx(
            [r.cost for r in stale_topk.results]
        )

    def test_product_mutation_drops_topk_but_not_skylines(self, engine):
        engine.query(TopKQuery(k=4))
        engine.query(ProductQuery(2))
        engine.add_product((1.9, 1.9))
        assert not engine.query(TopKQuery(k=4)).cache_hit
        assert engine.query(ProductQuery(2)).cache_hit


class TestBatching:
    def test_batch_matches_individual_answers(self, session, engine):
        responses = engine.execute_batch(
            [TopKQuery(k=2), TopKQuery(k=9), ProductQuery(0)]
        )
        oracle = session.top_k(9).costs
        assert [r.cost for r in responses[0].results] == pytest.approx(
            oracle[:2]
        )
        assert [r.cost for r in responses[1].results] == pytest.approx(
            oracle
        )
        assert responses[2].results[0].record_id == 0

    def test_batch_amortizes_traversal(self, session):
        ks = [3, 5, 9]
        with UpgradeEngine(
            session, EngineConfig(workers=0, cache=False)
        ) as separate:
            for k in ks:
                separate.query(TopKQuery(k=k))
            separate_accesses = separate.counters().node_accesses
        with UpgradeEngine(
            session, EngineConfig(workers=0, cache=False)
        ) as batched:
            batched.execute_batch([TopKQuery(k=k) for k in ks])
            batched_accesses = batched.counters().node_accesses
        assert batched_accesses < separate_accesses

    def test_pool_concurrent_submissions(self, engine):
        pendings = []
        errors = []

        def submitter(k):
            try:
                pendings.append(engine.submit(TopKQuery(k=k)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(1 + i % 5,))
            for i in range(20)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for pending in pendings:
            response = pending.result(timeout=5.0)
            assert len(response.results) == pending.query.k

    def test_queue_capacity_backpressure(self, session):
        engine = UpgradeEngine(
            session, EngineConfig(workers=1, queue_capacity=1)
        )
        # Saturate: the first batch may be picked up instantly, so keep
        # offering until one is refused.
        with pytest.raises(EngineOverloadedError):
            for _ in range(10_000):
                engine.submit_batch([TopKQuery(k=1), TopKQuery(k=1)])
        engine.close()
        assert engine.metrics()["rejected"] >= 1

    def test_closed_engine_rejects(self, session):
        engine = UpgradeEngine(session, EngineConfig(workers=1))
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(TopKQuery(k=1))

    def test_workerless_engine_rejects_submit(self, session):
        with UpgradeEngine(session, EngineConfig(workers=0)) as engine:
            with pytest.raises(ConfigurationError):
                engine.submit(TopKQuery(k=1))


class TestDeadlines:
    def test_expired_deadline_returns_partial_prefix(self, engine):
        response = engine.query(TopKQuery(k=30, deadline_s=0.0))
        assert response.partial
        assert len(response.results) < 30

    def test_partial_prefix_is_exact_top_of_ranking(self, session, engine):
        response = engine.query(TopKQuery(k=10, deadline_s=0.0))
        # Whatever was emitted must be the true cheapest prefix.
        n = len(response.results)
        assert [r.cost for r in response.results] == pytest.approx(
            session.top_k(10).costs[:n]
        )

    def test_deadline_in_batch_only_affects_its_request(self, engine):
        fast, slow = engine.execute_batch(
            [TopKQuery(k=12), TopKQuery(k=12, deadline_s=0.0)]
        )
        assert not fast.partial and len(fast.results) == 12
        assert slow.partial

    def test_engine_default_deadline(self, session):
        with UpgradeEngine(
            session, EngineConfig(workers=0, default_deadline_s=0.0)
        ) as engine:
            assert engine.query(TopKQuery(k=5)).partial


class TestMetrics:
    def test_snapshot_shape(self, engine):
        engine.query(TopKQuery(k=2))
        engine.query(ProductQuery(0))
        snap = engine.metrics()
        assert snap["requests"] == 2
        assert snap["topk_queries"] == 1
        assert snap["product_queries"] == 1
        assert snap["counters"]["node_accesses"] > 0
        assert 0.0 <= snap["latency_s"]["p50"] <= snap["latency_s"]["max"]
        assert snap["skyline_cache"]["capacity"] == 4096
        assert snap["epoch"] == [0, 0]

    def test_partials_counted(self, engine):
        engine.query(TopKQuery(k=30, deadline_s=0.0))
        assert engine.metrics()["partials"] == 1

    def test_per_worker_counters_merge_to_serial_totals(self, session):
        """Sharded per-worker counters must sum to the serial run's."""
        pids = list(range(session.product_count))
        serial = Counters()
        for pid in pids:
            point = session.product_point(pid)
            skyline = get_dominating_skyline(
                session._competitors, point, serial
            )
            upgrade(
                skyline, point, session.cost_model, session.config, serial
            )
        with UpgradeEngine(
            session, EngineConfig(workers=3, cache=False)
        ) as engine:
            pendings = engine.submit_batch(
                [ProductQuery(pid) for pid in pids]
            )
            for pending in pendings:
                pending.result(timeout=10.0)
            merged = engine.counters()
        assert merged == serial
