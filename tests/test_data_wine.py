"""Tests for the synthetic wine dataset and the §IV-B split protocol."""

import numpy as np
import pytest

from repro.data.wine import (
    ATTRIBUTE_COMBOS,
    WINE_CARDINALITY,
    synthesize_wine,
    wine_split,
)
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.skyline.vectorized import numpy_skyline_mask


class TestSynthesize:
    def test_cardinality_matches_uci_set(self):
        data = synthesize_wine()
        assert data.shape == (WINE_CARDINALITY, 3)

    def test_deterministic(self):
        np.testing.assert_array_equal(synthesize_wine(), synthesize_wine())

    def test_positive_physical_ranges(self):
        data = synthesize_wine()
        assert data.min() > 0.0
        # total SO2 occupies a much larger numeric range than chlorides.
        assert data[:, 2].mean() > 50 * data[:, 0].mean()

    def test_moments_match_published_statistics(self):
        data = synthesize_wine(n=20_000, seed=1)
        assert data[:, 0].mean() == pytest.approx(0.0458, rel=0.15)
        assert data[:, 1].mean() == pytest.approx(0.4898, rel=0.10)
        assert data[:, 2].mean() == pytest.approx(138.36, rel=0.10)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            synthesize_wine(n=0)


class TestWineSplit:
    @pytest.mark.parametrize("combo", sorted(ATTRIBUTE_COMBOS))
    def test_cardinalities(self, combo):
        p, t = wine_split(combo)
        dims = len(ATTRIBUTE_COMBOS[combo])
        assert t.shape == (1000, dims)
        assert p.shape == (WINE_CARDINALITY - 1000, dims)

    def test_normalized_to_unit_cube(self):
        p, t = wine_split("c,s,t")
        stacked = np.vstack([p, t])
        assert stacked.min() >= 0.0
        assert stacked.max() <= 1.0

    def test_products_are_non_skyline(self):
        """Every T tuple must be dominated within the full dataset."""
        p, t = wine_split("c,s")
        full = np.vstack([p, t])
        mask = numpy_skyline_mask(full)
        t_mask = mask[len(p):]
        assert not t_mask.any()

    def test_unknown_combo(self):
        with pytest.raises(ConfigurationError):
            wine_split("x,y")

    def test_oversized_t_rejected(self):
        with pytest.raises(EmptyDatasetError):
            wine_split("c,s,t", t_size=WINE_CARDINALITY)

    def test_split_deterministic(self):
        p1, t1 = wine_split("s,t", seed=3)
        p2, t2 = wine_split("s,t", seed=3)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(p1, p2)

    def test_different_seeds_differ(self):
        _, t1 = wine_split("s,t", seed=3)
        _, t2 = wine_split("s,t", seed=4)
        assert not np.array_equal(t1, t2)
