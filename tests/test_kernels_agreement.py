"""Kernel-vs-scalar agreement: the scalar paths are the oracles.

Every columnar kernel (:mod:`repro.kernels`) has a scalar twin it must
agree with — bit-identically on chosen points, and to 1e-9 on costs (the
batch evaluation performs the same additions in the same order for
(weighted-)sum integrations, so in practice the costs match exactly too).
These tests fuzz the agreement across dimensions 2–5, duplicate rows, and
antichain edge cases, plus end-to-end runs with the global switch toggled.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import top_k_upgrades
from repro.core.bounds import (
    BOUND_NAMES,
    join_list_bound,
    lbc,
    pair_bounds_vector,
)
from repro.core.dominators import get_dominating_skyline
from repro.core.types import UpgradeConfig
from repro.core.upgrade import _upgrade_scalar, upgrade
from repro.costs.model import paper_cost_model
from repro.instrumentation import Counters
from repro.kernels import (
    PointBlock,
    SkylineBuffer,
    any_dominates,
    dominated_mask,
    dominating_mask,
    enumerate_candidates,
    kernels_enabled,
    pair_bounds_block,
    pairwise_dominance,
    set_kernels_enabled,
    upgrade_kernel,
    use_kernels,
)
from repro.rtree.tree import RTree
from repro.skyline.bnl import bnl_skyline


def _scalar_dominates(p, q) -> bool:
    return all(a <= b for a, b in zip(p, q)) and any(
        a < b for a, b in zip(p, q)
    )


def _random_antichain_instance(seed: int, dims: int, duplicates: bool):
    """A dominator skyline (antichain) plus a product it fully dominates."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 80))
    cloud = 0.05 + rng.random((n, dims)) * 1.5
    skyline = bnl_skyline([tuple(row) for row in cloud])
    if duplicates:
        skyline = skyline + skyline[: max(1, len(skyline) // 2)]
    product = tuple(
        float(max(s[d] for s in skyline) + 0.25) for d in range(dims)
    )
    return skyline, product


# ---------------------------------------------------------------------------
# PointBlock


class TestPointBlock:
    def test_from_points_round_trip(self):
        pts = [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]
        block = PointBlock.from_points(pts)
        assert len(block) == 3
        assert block.points() == pts
        assert list(block.ids) == [0, 1, 2]
        assert block.point(1) == (3.0, 4.0)

    def test_append_grows_past_initial_capacity(self):
        block = PointBlock(2)
        for i in range(100):
            block.append((float(i), float(-i)), record_id=i * 10)
        assert len(block) == 100
        assert block.point(73) == (73.0, -73.0)
        assert block.id_of(73) == 730
        assert block.data.shape == (100, 2)

    def test_extend_and_subset(self):
        block = PointBlock(3)
        rows = [(float(i), 0.0, 1.0) for i in range(10)]
        block.extend(rows, ids=range(10))
        mask = block.data[:, 0] >= 5.0
        sub = block.subset(mask)
        assert sub.points() == rows[5:]
        assert list(sub.ids) == [5, 6, 7, 8, 9]

    def test_take(self):
        block = PointBlock.from_points([(0.0,), (1.0,), (2.0,)])
        taken = block.take([2, 0])
        assert taken.points() == [(2.0,), (0.0,)]

    def test_dim_mismatch_rejected(self):
        block = PointBlock(2)
        with pytest.raises(ValueError):
            block.append((1.0, 2.0, 3.0))


# ---------------------------------------------------------------------------
# Dominance masks vs the scalar predicate


@pytest.mark.parametrize("dims", [2, 3, 4, 5])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dominance_masks_match_scalar(dims, seed):
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 4, size=(60, dims)).astype(float)  # many ties
    q = tuple(float(v) for v in rng.integers(0, 4, size=dims))
    dominating = dominating_mask(pts, q)
    dominated = dominated_mask(pts, q)
    for i, row in enumerate(pts):
        assert dominating[i] == _scalar_dominates(tuple(row), q)
        assert dominated[i] == _scalar_dominates(q, tuple(row))
    assert any_dominates(pts, q) == bool(dominating.any())


def test_pairwise_dominance_matrix():
    a = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 2.0]])
    b = np.array([[1.0, 1.0], [0.0, 0.0]])
    mat = pairwise_dominance(a, b)
    for i in range(len(a)):
        for j in range(len(b)):
            assert mat[i, j] == _scalar_dominates(
                tuple(a[i]), tuple(b[j])
            )


def test_equal_points_never_dominate():
    pts = np.array([[1.0, 2.0], [1.0, 2.0]])
    assert not dominating_mask(pts, (1.0, 2.0)).any()
    assert not dominated_mask(pts, (1.0, 2.0)).any()


# ---------------------------------------------------------------------------
# SkylineBuffer: vectorized test == scalar test on both sides of the cutover


@pytest.mark.parametrize("dims", [2, 3, 4])
def test_skyline_buffer_agrees_across_switch(dims):
    rng = np.random.default_rng(77)
    pts = [tuple(row) for row in 0.05 + rng.random((120, dims))]
    probes = [tuple(row) for row in 0.05 + rng.random((40, dims)) * 1.2]
    buf_on = SkylineBuffer(dims)
    buf_off = SkylineBuffer(dims)
    for p in bnl_skyline(pts):
        buf_on.add(p)
        buf_off.add(p)
    for q in probes:
        expected = any(_scalar_dominates(s, q) for s in buf_on.points)
        with use_kernels(True):
            assert buf_on.dominates_point(q, None) == expected
        with use_kernels(False):
            assert buf_off.dominates_point(q, None) == expected


def test_skyline_buffer_counter_is_path_independent():
    buf = SkylineBuffer(2)
    for i in range(64):
        buf.add((float(i), float(64 - i)))
    on, off = Counters(), Counters()
    with use_kernels(True):
        buf.dominates_point((10.0, 10.0), on)
    with use_kernels(False):
        buf.dominates_point((10.0, 10.0), off)
    assert on.dominance_tests == off.dominance_tests == 64


# ---------------------------------------------------------------------------
# Algorithm 1: kernel vs scalar, bit-identical points


@pytest.mark.parametrize("dims", [2, 3, 4, 5])
@pytest.mark.parametrize("extended", [False, True])
@pytest.mark.parametrize("duplicates", [False, True])
def test_upgrade_kernel_matches_scalar(dims, extended, duplicates):
    model = paper_cost_model(dims)
    config = UpgradeConfig(epsilon=1e-6, extended=extended)
    for seed in range(6):
        skyline, product = _random_antichain_instance(
            seed * 17 + dims, dims, duplicates
        )
        scalar_cost, scalar_point = _upgrade_scalar(
            skyline, product, model, config
        )
        kernel_cost, kernel_point = upgrade_kernel(
            skyline, product, model, config.epsilon, config.extended
        )
        assert kernel_point == scalar_point  # bit-identical tie resolution
        assert kernel_cost == pytest.approx(scalar_cost, abs=1e-9)


def test_upgrade_kernel_singleton_and_equal_rows():
    model = paper_cost_model(3)
    config = UpgradeConfig(epsilon=1e-6)
    product = (2.0, 2.0, 2.0)
    for skyline in (
        [(1.0, 1.5, 0.5)],
        [(1.0, 1.5, 0.5)] * 4,  # duplicate rows are a legal antichain
    ):
        scalar = _upgrade_scalar(skyline, product, model, config)
        kernel = upgrade_kernel(skyline, product, model, 1e-6, False)
        assert kernel[1] == scalar[1]
        assert kernel[0] == pytest.approx(scalar[0], abs=1e-9)


def test_enumerate_candidates_shape_and_order():
    skyline = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
    eps = 0.5
    block = enumerate_candidates(np.asarray(skyline), (4.0, 4.0), eps)
    assert block.shape == (2 * (1 + 2), 2)
    # dim 0: single-dimension candidate first, then the two slots.
    assert tuple(block[0]) == (0.5, 4.0)
    assert tuple(block[1]) == (1.5, 2.5)
    assert tuple(block[2]) == (2.5, 1.5)
    extended = enumerate_candidates(
        np.asarray(skyline), (4.0, 4.0), eps, extended=True
    )
    assert extended.shape == (2 * (1 + 2 + 1), 2)
    assert tuple(extended[3]) == (4.0, 0.5)  # tail keeps p's own d_0


@given(st.integers(0, 2 ** 31 - 1), st.integers(2, 5), st.booleans())
@settings(max_examples=60, deadline=None)
def test_upgrade_end_to_end_switch_agreement(seed, dims, extended):
    """Public ``upgrade`` with the switch on vs off — same answers."""
    skyline, product = _random_antichain_instance(seed, dims, False)
    model = paper_cost_model(dims)
    config = UpgradeConfig(epsilon=1e-6, extended=extended, validate=True)
    with use_kernels(True):
        cost_on, point_on = upgrade(skyline, product, model, config)
    with use_kernels(False):
        cost_off, point_off = upgrade(skyline, product, model, config)
    assert point_on == point_off
    assert cost_on == pytest.approx(cost_off, abs=1e-9)


# ---------------------------------------------------------------------------
# Algorithm 3 and the join-list bounds


@pytest.mark.parametrize("dims", [2, 3, 4])
def test_get_dominating_skyline_switch_agreement(dims):
    rng = np.random.default_rng(dims * 101)
    pts = 0.05 + rng.random((400, dims))
    tree = RTree.bulk_load(pts, max_entries=8)
    for row in 0.05 + rng.random((25, dims)) * 1.8:
        t = tuple(float(v) for v in row)
        with use_kernels(True):
            on = get_dominating_skyline(tree, t, Counters())
        with use_kernels(False):
            off = get_dominating_skyline(tree, t, Counters())
        assert on == off  # identical points, identical order


@given(st.integers(0, 2 ** 31 - 1), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_pair_bounds_vector_matches_scalar_lbc(seed, dims):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    model = paper_cost_model(dims)
    t_low = tuple(0.05 + rng.random(dims) * 2.0)
    lows = 0.05 + rng.random((n, dims)) * 2.0
    highs = lows + rng.random((n, dims)) * 0.8
    vector = pair_bounds_vector(t_low, lows, highs, model)
    scalar = [
        lbc(t_low, tuple(lo), tuple(hi), model)
        for lo, hi in zip(lows, highs)
    ]
    assert len(vector) == len(scalar)
    for (vb, vs), (sb, ss) in zip(vector, scalar):
        assert vs == ss  # identical classification signatures
        assert vb == pytest.approx(sb, abs=1e-9)
    for name in BOUND_NAMES:
        assert join_list_bound(name, vector) == pytest.approx(
            join_list_bound(name, scalar), abs=1e-9
        )


@given(st.integers(0, 2 ** 31 - 1), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_pair_bounds_block_matches_scalar_lbc(seed, dims):
    """The raw kernel entry point itself, not just its core wrapper."""
    rng = np.random.default_rng(seed ^ 0x5BD1)
    n = int(rng.integers(1, 30))
    model = paper_cost_model(dims)
    t_low = tuple(0.05 + rng.random(dims) * 2.0)
    lows = 0.05 + rng.random((n, dims)) * 2.0
    highs = lows + rng.random((n, dims)) * 0.8
    block = pair_bounds_block(t_low, lows, highs, model)
    scalar = [
        lbc(t_low, tuple(lo), tuple(hi), model)
        for lo, hi in zip(lows, highs)
    ]
    assert len(block) == len(scalar)
    for (kb, ks), (sb, ss) in zip(block, scalar):
        assert ks == ss  # identical classification signatures
        assert kb == pytest.approx(sb, abs=1e-9)


# ---------------------------------------------------------------------------
# End to end: the whole pipeline with kernels on vs off


@pytest.mark.parametrize("method", ["join", "probing", "basic-probing"])
def test_top_k_upgrades_switch_agreement(method):
    rng = np.random.default_rng(4242)
    competitors = 0.05 + rng.random((300, 3))
    products = 0.05 + rng.random((80, 3)) * 1.6
    model = paper_cost_model(3)
    with use_kernels(True):
        on = top_k_upgrades(
            competitors, products, k=7, cost_model=model, method=method,
            max_entries=8,
        )
    with use_kernels(False):
        off = top_k_upgrades(
            competitors, products, k=7, cost_model=model, method=method,
            max_entries=8,
        )
    assert [r.record_id for r in on.results] == [
        r.record_id for r in off.results
    ]
    assert np.allclose(on.costs, off.costs, atol=1e-9)
    assert [r.upgraded for r in on.results] == [
        r.upgraded for r in off.results
    ]
    # Probing's scale-free counters are path-independent by design; the
    # join's leaf fast path legitimately skips heap traffic, so only the
    # call-level counters are compared there.
    if method == "join":
        assert (
            on.report.counters.upgrade_calls
            == off.report.counters.upgrade_calls
        )
    else:
        assert on.report.counters == off.report.counters


# ---------------------------------------------------------------------------
# The switch itself


def test_switch_context_restores_state():
    assert kernels_enabled()  # default on
    with use_kernels(False):
        assert not kernels_enabled()
        with use_kernels(True):
            assert kernels_enabled()
        assert not kernels_enabled()
    assert kernels_enabled()


def test_set_kernels_enabled_returns_previous():
    previous = set_kernels_enabled(False)
    try:
        assert previous is True
        assert set_kernels_enabled(True) is False
    finally:
        set_kernels_enabled(True)
