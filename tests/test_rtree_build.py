"""R-tree construction tests: dynamic insertion and STR bulk loading."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

coord = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=200)


class TestConfiguration:
    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            RTree(0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RTree(2, max_entries=3)

    def test_invalid_min_entries(self):
        with pytest.raises(ConfigurationError):
            RTree(2, max_entries=8, min_entries=5)

    def test_unknown_split(self):
        with pytest.raises(ConfigurationError):
            RTree(2, split="fancy")

    def test_default_min_entries_is_forty_percent(self):
        tree = RTree(2, max_entries=10)
        assert tree.min_entries == 4


class TestDynamicInsertion:
    def test_empty_tree(self):
        tree = RTree(2)
        assert len(tree) == 0
        assert tree.is_empty()
        assert tree.height == 1
        validate_rtree(tree)

    def test_single_insert(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5))
        assert len(tree) == 1
        assert list(tree.iter_points()) == [((0.5, 0.5), 0)]

    def test_record_ids_default_to_insertion_order(self):
        tree = RTree(1, max_entries=4)
        for i in range(10):
            tree.insert((float(i),))
        ids = sorted(rid for _, rid in tree.iter_points())
        assert ids == list(range(10))

    def test_grows_in_height(self):
        tree = RTree(2, max_entries=4)
        rng = np.random.default_rng(0)
        for p in rng.random((120, 2)):
            tree.insert(tuple(p))
        assert tree.height >= 3
        validate_rtree(tree)
        assert len(tree) == 120

    @pytest.mark.parametrize("split", ["quadratic", "linear"])
    def test_both_split_strategies_keep_invariants(self, split):
        tree = RTree(3, max_entries=6, split=split)
        rng = np.random.default_rng(42)
        pts = rng.random((150, 3))
        for p in pts:
            tree.insert(tuple(p))
        validate_rtree(tree)
        found = sorted(p for p, _ in tree.iter_points())
        assert found == sorted(map(tuple, pts))

    def test_duplicate_points_allowed(self):
        tree = RTree(2, max_entries=4)
        for i in range(20):
            tree.insert((0.5, 0.5), i)
        assert len(tree) == 20
        validate_rtree(tree)

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_insertion_preserves_content_and_invariants(self, points):
        tree = RTree(2, max_entries=5)
        for i, p in enumerate(points):
            tree.insert(p, i)
        validate_rtree(tree)
        assert sorted(p for p, _ in tree.iter_points()) == sorted(points)


class TestBulkLoad:
    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            RTree.bulk_load([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            RTree.bulk_load([(1, 2), (1, 2, 3)])

    def test_contains_all_points(self, rng):
        pts = np.random.default_rng(9).random((500, 3))
        tree = RTree.bulk_load(pts)
        assert len(tree) == 500
        validate_rtree(tree, check_fill=False)
        found = sorted(p for p, _ in tree.iter_points())
        assert found == sorted(map(tuple, pts))

    def test_custom_record_ids(self):
        tree = RTree.bulk_load([(0, 0), (1, 1)], record_ids=[7, 9])
        assert sorted(rid for _, rid in tree.iter_points()) == [7, 9]

    def test_single_point(self):
        tree = RTree.bulk_load([(0.3, 0.7)])
        assert tree.height == 1
        assert len(tree) == 1

    def test_fills_leaves_near_capacity(self):
        pts = np.random.default_rng(3).random((1024, 2))
        tree = RTree.bulk_load(pts, max_entries=32)
        # STR packs 1024/32 = exactly 32 full leaves under one root.
        assert tree.height == 2
        assert len(tree.root.entries) == 32

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_bulk_load_equivalent_content(self, points):
        tree = RTree.bulk_load(points, max_entries=4)
        validate_rtree(tree, check_fill=False)
        assert sorted(p for p, _ in tree.iter_points()) == sorted(points)


class TestInspection:
    def test_bounds(self):
        tree = RTree.bulk_load([(0, 1), (2, -1), (1, 0)])
        box = tree.bounds()
        assert box.low == (0.0, -1.0)
        assert box.high == (2.0, 1.0)

    def test_bounds_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            RTree(2).bounds()

    def test_root_entry_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            RTree(2).root_entry()

    def test_root_entry_wraps_root(self):
        tree = RTree.bulk_load([(0, 0), (1, 1)])
        entry = tree.root_entry()
        assert entry.child is tree.root
        assert entry.mbr == tree.bounds()

    def test_repr(self):
        tree = RTree.bulk_load([(0, 0)])
        assert "RTree" in repr(tree)
