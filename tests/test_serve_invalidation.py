"""Randomized cache-invalidation correctness.

The serving engine's whole value rests on one invariant: a cached answer is
indistinguishable from a cold recomputation.  These tests interleave
competitor inserts/deletes, product churn, and upgrade commits with top-k
and per-product queries at random, and after *every* query assert equality
against the live session's uncached ``MarketSession.top_k`` (the session
recomputes from its indexes on each call — the engine's caches never sit
in that path).
"""

import numpy as np
import pytest

from repro.core.session import MarketSession
from repro.core.upgrade import upgrade
from repro.serve import (
    EngineConfig,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)


def run_interleaving(seed, steps=120, n_p=60, n_t=22, dims=2):
    rng = np.random.default_rng(seed)
    session = MarketSession.from_points(
        rng.random((n_p, dims)), 1.0 + rng.random((n_t, dims)),
        max_entries=8,
    )
    engine = UpgradeEngine(session, EngineConfig(workers=0))
    live_competitors = list(range(n_p))
    live_products = list(range(n_t))
    checks = hits = 0
    try:
        for _ in range(steps):
            op = rng.random()
            if op < 0.15:
                # Insert a competitor: sometimes deep inside product ADRs,
                # sometimes far outside every region (cache survives).
                if rng.random() < 0.5:
                    point = tuple(rng.uniform(0.0, 1.8, dims))
                else:
                    point = tuple(rng.uniform(3.0, 4.0, dims))
                live_competitors.append(engine.add_competitor(point))
            elif op < 0.25 and live_competitors:
                victim = live_competitors.pop(
                    int(rng.integers(len(live_competitors)))
                )
                assert engine.remove_competitor(victim)
            elif op < 0.30:
                pid = engine.add_product(tuple(1.0 + rng.random(dims)))
                live_products.append(pid)
            elif op < 0.35 and len(live_products) > 3:
                victim = live_products.pop(
                    int(rng.integers(len(live_products)))
                )
                assert engine.remove_product(victim)
            elif op < 0.40 and live_products:
                # Commit a real upgrade for a random product.
                pid = live_products[int(rng.integers(len(live_products)))]
                point = session.product_point(pid)
                skyline = session.dominator_skyline(point)
                cost, upgraded = upgrade(
                    skyline, point, session.cost_model, session.config
                )
                if cost > 0:
                    from repro.core.types import UpgradeResult

                    engine.commit_upgrade(
                        UpgradeResult(pid, point, upgraded, cost)
                    )
            elif op < 0.80:
                k = int(rng.integers(1, 9))
                response = engine.query(TopKQuery(k=k))
                cold = session.top_k(k)
                assert [r.cost for r in response.results] == pytest.approx(
                    cold.costs
                ), f"top-{k} diverged from cold recomputation"
                assert [r.record_id for r in response.results] == [
                    r.record_id for r in cold.results
                ]
                checks += 1
                hits += response.cache_hit
            elif live_products:
                pid = live_products[int(rng.integers(len(live_products)))]
                response = engine.query(ProductQuery(pid))
                point = session.product_point(pid)
                cold_cost, cold_upgraded = upgrade(
                    session.dominator_skyline(point),
                    point,
                    session.cost_model,
                    session.config,
                )
                (result,) = response.results
                assert result.cost == pytest.approx(cold_cost)
                assert result.upgraded == pytest.approx(cold_upgraded)
                checks += 1
                hits += response.cache_hit
    finally:
        engine.close()
    return checks, hits


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_cached_answers_equal_cold_recomputation(seed):
    checks, _ = run_interleaving(seed)
    assert checks > 20  # the interleaving actually exercised queries


def test_cache_provides_hits_under_churn():
    """The precise invalidation must leave some entries alive — a cache
    that never hits under churn would be wholesale invalidation in
    disguise."""
    total_checks = total_hits = 0
    for seed in range(4):
        checks, hits = run_interleaving(seed)
        total_checks += checks
        total_hits += hits
    assert total_hits > 0
    assert total_hits < total_checks  # and invalidation does fire
