"""The dynamic lock-order witness: graph recording and cycle detection."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.lockorder import LockOrderWitness, instrument_engine
from repro.core.session import MarketSession
from repro.exceptions import LockOrderError
from repro.serve import (
    EngineConfig,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)
from repro.serve.pool import ReadWriteLock


def test_consistent_order_stays_clean():
    witness = LockOrderWitness()
    a = witness.wrap_lock(threading.Lock(), "a")
    b = witness.wrap_lock(threading.Lock(), "b")
    for _ in range(3):
        with a:
            with b:
                pass
    assert witness.acquisitions() == 6
    assert witness.edges() == {("a", "b"): 3}
    assert witness.cycles() == []
    witness.check()  # must not raise


def test_inversion_is_detected_and_named():
    witness = LockOrderWitness()
    a = witness.wrap_lock(threading.Lock(), "a")
    b = witness.wrap_lock(threading.Lock(), "b")
    with a:
        with b:
            pass
    with b:
        with a:  # the inversion
            pass
    assert witness.cycles() == [["a", "b"]]
    with pytest.raises(LockOrderError) as info:
        witness.check()
    assert "a -> b -> a" in str(info.value)


def test_three_lock_cycle():
    witness = LockOrderWitness()
    locks = {
        name: witness.wrap_lock(threading.Lock(), name) for name in "abc"
    }
    for first, second in [("a", "b"), ("b", "c"), ("c", "a")]:
        with locks[first]:
            with locks[second]:
                pass
    assert witness.cycles() == [["a", "b", "c"]]


def test_inversion_across_threads_is_detected():
    witness = LockOrderWitness()
    a = witness.wrap_lock(threading.Lock(), "a")
    b = witness.wrap_lock(threading.Lock(), "b")
    gate = threading.Event()

    def forward():
        with a:
            with b:
                gate.set()

    def backward():
        gate.wait(timeout=5.0)
        with b:
            with a:
                pass

    threads = [
        threading.Thread(target=forward),
        threading.Thread(target=backward),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5.0)
    assert witness.cycles() == [["a", "b"]]


def test_condition_wait_releases_the_lock():
    """Time blocked in ``wait`` must not fabricate ordering edges."""
    witness = LockOrderWitness()
    cond = witness.wrap_condition(threading.Condition(), "cond")
    other = witness.wrap_lock(threading.Lock(), "other")
    woke = []

    def waiter():
        with cond:
            cond.wait(timeout=5.0)
            woke.append(True)

    t = threading.Thread(target=waiter)
    t.start()
    # While the waiter is blocked, this thread takes other -> cond; the
    # waiter later takes cond -> (nothing), so no cond->other edge and
    # no cycle may appear.
    with other:
        with cond:
            cond.notify_all()
    t.join(timeout=5.0)
    assert woke == [True]
    assert witness.cycles() == []
    assert ("cond", "other") not in witness.edges()


def test_rwlock_read_and_write_are_one_node():
    witness = LockOrderWitness()
    rw = witness.wrap_rwlock(ReadWriteLock(), "rw")
    inner = witness.wrap_lock(threading.Lock(), "inner")
    with rw.read_locked():
        with inner:
            pass
    with rw.write_locked():
        with inner:
            pass
    assert witness.edges() == {("rw", "inner"): 2}
    witness.check()


def test_reentrant_same_name_adds_no_self_edge():
    witness = LockOrderWitness()
    rlock = witness.wrap_lock(threading.RLock(), "r")
    with rlock:
        with rlock:
            pass
    assert witness.edges() == {}
    assert witness.cycles() == []


def test_instrumented_engine_stays_cycle_free():
    """A real serving engine under load respects one global lock order."""
    rng = np.random.default_rng(7)
    session = MarketSession.from_points(
        rng.random((120, 2)), 1.0 + rng.random((25, 2)), max_entries=8
    )
    engine = UpgradeEngine(session, EngineConfig(workers=2, batch_max=8))
    witness = LockOrderWitness()
    instrument_engine(engine, witness)
    try:
        pendings = engine.submit_batch(
            [ProductQuery(pid) for pid in range(8)] + [TopKQuery(k=5)]
        )
        for pending in pendings:
            pending.result(timeout=30.0)
        engine.add_competitor((0.4, 0.4))
        engine.query(TopKQuery(k=5))
        engine.metrics()
    finally:
        engine.close()
    assert witness.acquisitions() > 0
    witness.check()  # no ordering cycle anywhere in the serving stack
