"""Tests for the serving layer's epoch-versioned caches."""

from repro.core.types import UpgradeResult
from repro.serve.cache import SkylineCache, TopKCache


def _result(pid=0, point=(1.0, 1.0), cost=0.5):
    return UpgradeResult(pid, point, (0.9, 0.9), cost)


class TestSkylineCache:
    def test_miss_then_hit(self):
        cache = SkylineCache()
        assert cache.get((1.0, 1.0)) is None
        cache.put((1.0, 1.0), [(0.5, 0.5)], _result(), epoch=(1, 0))
        entry = cache.get((1.0, 1.0))
        assert entry is not None
        assert entry.skyline == [(0.5, 0.5)]
        assert entry.epoch == (1, 0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_precise_point_invalidation(self):
        cache = SkylineCache()
        cache.put((1.0, 1.0), [], _result(), (0, 0))
        cache.put((3.0, 0.5), [], _result(), (0, 0))
        # (0.6, 0.6) lies in ADR((1,1)) but not in ADR((3, 0.5)).
        dropped = cache.invalidate_point((0.6, 0.6))
        assert dropped == 1
        assert cache.get((1.0, 1.0)) is None
        assert cache.get((3.0, 0.5)) is not None

    def test_mutation_outside_every_adr_drops_nothing(self):
        cache = SkylineCache()
        cache.put((1.0, 1.0), [], _result(), (0, 0))
        assert cache.invalidate_point((2.0, 0.5)) == 0
        assert cache.get((1.0, 1.0)) is not None

    def test_region_invalidation_uses_lower_corner(self):
        cache = SkylineCache()
        cache.put((1.0, 1.0), [], _result(), (0, 0))
        cache.put((0.2, 0.2), [], _result(), (0, 0))
        # Box [0.5, 2]^2: its lower corner reaches ADR((1,1)) only.
        assert cache.invalidate_region((0.5, 0.5), (2.0, 2.0)) == 1
        assert cache.get((0.2, 0.2)) is not None

    def test_lru_eviction(self):
        cache = SkylineCache(max_entries=2)
        cache.put((1.0,), [], _result(), (0, 0))
        cache.put((2.0,), [], _result(), (0, 0))
        assert cache.get((1.0,)) is not None  # refresh (1.0,)
        cache.put((3.0,), [], _result(), (0, 0))
        assert cache.get((2.0,)) is None  # the LRU entry went
        assert cache.get((1.0,)) is not None
        assert cache.stats.evictions == 1

    def test_clear(self):
        cache = SkylineCache()
        cache.put((1.0,), [], _result(), (0, 0))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTopKCache:
    def test_hit_requires_covering_prefix(self):
        cache = TopKCache()
        assert cache.get(1) is None
        cache.put([_result(i) for i in range(3)], exhausted=False,
                  epoch=(0, 0))
        hit = cache.get(2)
        assert hit is not None and len(hit[0]) == 2
        assert cache.get(5) is None  # prefix too short, not exhausted

    def test_exhausted_prefix_serves_any_k(self):
        cache = TopKCache()
        cache.put([_result(0)], exhausted=True, epoch=(0, 0))
        results, exhausted = cache.get(10)
        assert exhausted and len(results) == 1

    def test_shorter_put_never_clobbers_longer(self):
        cache = TopKCache()
        cache.put([_result(i) for i in range(5)], False, (0, 0))
        cache.put([_result(9)], False, (1, 0))
        assert cache.prefix_length == 5

    def test_invalidate(self):
        cache = TopKCache()
        cache.put([_result(0)], True, (0, 0))
        cache.invalidate()
        assert cache.get(1) is None
        assert cache.prefix_length == 0
        assert cache.stats.invalidations == 1
