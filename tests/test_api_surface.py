"""The consolidated public API: re-exports, EngineConfig, typed options.

This suite pins the surface promised by the serving-API consolidation:
``repro`` re-exports the serving layer, ``EngineConfig`` is the one
construction path (legacy kwargs warn exactly once), and misspelled
string selectors fail up front with the valid choices listed.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.api import top_k_upgrades
from repro.core.session import MarketSession
from repro.exceptions import (
    ConfigurationError,
    SkyUpError,
    UnknownOptionError,
)
from repro.serve import EngineConfig, TopKQuery, UpgradeEngine


def make_session(seed=11, n_p=150, n_t=40, dims=2):
    rng = np.random.default_rng(seed)
    return MarketSession.from_points(
        rng.random((n_p, dims)), 1.0 + rng.random((n_t, dims)),
        max_entries=8,
    )


class TestReExports:
    def test_serving_names_are_canonical(self):
        import repro.serve.engine as engine_mod

        assert repro.UpgradeEngine is engine_mod.UpgradeEngine
        assert repro.TopKQuery is engine_mod.TopKQuery
        assert repro.ProductQuery is engine_mod.ProductQuery
        assert repro.Query is engine_mod.Query
        assert repro.QueryResponse is engine_mod.QueryResponse
        assert repro.PendingQuery is engine_mod.PendingQuery

    def test_config_and_kernel_switch_exported(self):
        from repro.kernels.switch import use_kernels
        from repro.serve.config import EngineConfig as deep_config

        assert repro.EngineConfig is deep_config
        assert repro.use_kernels is use_kernels

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_serve_package_is_the_import_surface(self):
        from repro import serve

        for name in serve.__all__:
            assert getattr(serve, name) is not None
        assert "EngineConfig" in serve.__all__


class TestEngineConfig:
    def test_legacy_kwargs_warn_once_and_match_config(self):
        session = make_session()
        with pytest.warns(DeprecationWarning) as caught:
            legacy = UpgradeEngine(session, workers=0, cache=False)
        assert len(caught) == 1
        assert "EngineConfig" in str(caught[0].message)
        explicit = UpgradeEngine(
            session, EngineConfig(workers=0, cache=False)
        )
        try:
            assert legacy.config == explicit.config
            a = legacy.query(TopKQuery(k=3))
            b = explicit.query(TopKQuery(k=3))
            assert [r.record_id for r in a.results] == [
                r.record_id for r in b.results
            ]
        finally:
            legacy.close()
            explicit.close()

    def test_config_construction_does_not_warn(self):
        session = make_session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with UpgradeEngine(session, EngineConfig(workers=0)) as engine:
                engine.query(TopKQuery(k=2))

    def test_unknown_kwarg_is_a_config_error(self):
        session = make_session()
        with pytest.raises(ConfigurationError, match="worker"):
            UpgradeEngine(session, wokers=2)

    def test_metrics_reports_resolved_config(self):
        session = make_session()
        config = EngineConfig(
            workers=0, batch_max=7, trace_sample_rate=0.25
        )
        with UpgradeEngine(session, config) as engine:
            reported = engine.metrics()["config"]
        assert reported["batch_max"] == 7
        assert reported["trace_sample_rate"] == 0.25
        assert set(reported) == set(EngineConfig.field_names())

    @pytest.mark.parametrize(
        "bad",
        [
            {"workers": -1},
            {"queue_capacity": 0},
            {"batch_max": 0},
            {"trace_sample_rate": 1.5},
            {"trace_store_capacity": 0},
            {"default_deadline_s": -0.1},
        ],
    )
    def test_invalid_values_fail_fast(self, bad):
        with pytest.raises(ConfigurationError):
            EngineConfig(**bad)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().workers = 4


class TestOptionValidation:
    P = np.array([[0.2, 0.8], [0.5, 0.5], [0.8, 0.2]])
    T = np.array([[0.9, 0.9], [0.6, 0.6]])

    @pytest.mark.parametrize(
        "kwargs,option,listed",
        [
            ({"method": "joining"}, "method", "probing"),
            ({"bound": "tight"}, "bound", "clb"),
            ({"lbc_mode": "fixed"}, "lbc_mode", "corrected"),
        ],
    )
    def test_unknown_selector_lists_choices(self, kwargs, option, listed):
        with pytest.raises(UnknownOptionError) as excinfo:
            top_k_upgrades(self.P, self.T, **kwargs)
        exc = excinfo.value
        assert exc.option == option
        assert listed in exc.choices
        message = str(exc)
        assert f"unknown {option}" in message and listed in message

    def test_typed_error_is_catchable_as_base(self):
        with pytest.raises(ConfigurationError):
            top_k_upgrades(self.P, self.T, method="nope")
        with pytest.raises(SkyUpError):
            top_k_upgrades(self.P, self.T, bound="nope")
        with pytest.raises(ValueError):
            top_k_upgrades(self.P, self.T, lbc_mode="nope")

    @pytest.mark.parametrize(
        "kwargs,expected",
        [
            ({"method": "jion"}, "join"),
            ({"method": "Probing"}, "probing"),
            ({"bound": "abl"}, "alb"),
            ({"lbc_mode": "papr"}, "paper"),
        ],
    )
    def test_near_miss_gets_suggestion(self, kwargs, expected):
        with pytest.raises(UnknownOptionError) as excinfo:
            top_k_upgrades(self.P, self.T, **kwargs)
        exc = excinfo.value
        assert exc.suggestion == expected
        assert f"did you mean {expected!r}?" in str(exc)

    def test_wild_guess_gets_no_suggestion(self):
        with pytest.raises(UnknownOptionError) as excinfo:
            top_k_upgrades(self.P, self.T, method="quantum")
        assert excinfo.value.suggestion is None
        assert "did you mean" not in str(excinfo.value)

    def test_engine_config_method_suggests(self):
        with pytest.raises(UnknownOptionError) as excinfo:
            EngineConfig(method="atuo")
        assert excinfo.value.suggestion == "auto"

    def test_validation_happens_before_index_build(self):
        # A huge (never materialized) product set would make index
        # construction obvious; the typo must fail before any of that.
        class Exploding:
            def __len__(self):
                raise AssertionError("index build started")

        with pytest.raises(UnknownOptionError):
            top_k_upgrades(self.P, Exploding(), method="nope")

    def test_cli_rejects_unknown_bound(self, capsys):
        from repro.cli import main

        code = main(
            [
                "bench-kernels",
                "--competitors", "10",
                "--products", "5",
                "--bound", "tight",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown bound 'tight'" in err and "'clb'" in err
