"""Tests for the MarketSession incremental API."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.session import MarketSession
from repro.core.types import UpgradeResult
from repro.core.verify import brute_force_topk
from repro.costs.model import paper_cost_model
from repro.exceptions import ConfigurationError


@pytest.fixture()
def session():
    return MarketSession(2, paper_cost_model(2), max_entries=8)


def fill(session, competitors, products):
    for c in competitors:
        session.add_competitor(c)
    for p in products:
        session.add_product(p)


class TestLifecycle:
    def test_dims_must_match_cost_model(self):
        with pytest.raises(ConfigurationError):
            MarketSession(3, paper_cost_model(2))

    def test_counts(self, session):
        fill(session, [(0.5, 0.5)], [(1.0, 1.0), (1.5, 1.5)])
        assert session.competitor_count == 1
        assert session.product_count == 2

    def test_empty_catalog_query(self, session):
        session.add_competitor((0.5, 0.5))
        assert len(session.top_k(3)) == 0
        assert list(session.stream()) == []

    def test_remove_unknown_ids(self, session):
        assert not session.remove_competitor(99)
        assert not session.remove_product(99)

    def test_repr(self, session):
        assert "MarketSession" in repr(session)


class TestQueriesTrackState:
    def test_matches_fresh_oracle(self, session):
        rng = np.random.default_rng(1)
        competitors = [tuple(p) for p in rng.random((80, 2))]
        products = [tuple(1 + p) for p in rng.random((25, 2))]
        fill(session, competitors, products)
        outcome = session.top_k(5)
        oracle = brute_force_topk(
            competitors, products, session.cost_model, k=5
        )
        assert outcome.costs == pytest.approx([r.cost for r in oracle])

    def test_removing_a_competitor_can_lower_costs(self, session):
        fill(session, [(0.2, 0.2)], [(1.0, 1.0)])
        before = session.top_k(1).results[0].cost
        # Add a much weaker competitor; removing the strong one leaves it.
        session.add_competitor((0.9, 0.9))
        assert session.remove_competitor(0)
        after = session.top_k(1).results[0].cost
        assert after < before

    def test_adding_competitors_can_raise_costs(self, session):
        fill(session, [(0.9, 0.9)], [(1.0, 1.0)])
        before = session.top_k(1).results[0].cost
        session.add_competitor((0.1, 0.1))
        after = session.top_k(1).results[0].cost
        assert after >= before

    def test_commit_upgrade_updates_ranking(self, session):
        rng = np.random.default_rng(2)
        fill(
            session,
            [tuple(p) for p in rng.random((50, 2))],
            [(1.2, 1.2), (1.4, 1.4)],
        )
        best = session.top_k(1).results[0]
        session.commit_upgrade(best)
        # The committed product is now competitive: cost 0 at the top.
        outcome = session.top_k(1)
        assert outcome.results[0].record_id == best.record_id
        assert outcome.results[0].cost == 0.0
        assert session.product_point(best.record_id) == best.upgraded

    def test_commit_stale_upgrade_rejected(self, session):
        fill(session, [(0.5, 0.5)], [(1.0, 1.0)])
        best = session.top_k(1).results[0]
        session.commit_upgrade(best)
        with pytest.raises(ConfigurationError, match="stale"):
            session.commit_upgrade(best)

    def test_commit_unknown_product_rejected(self, session):
        bogus = UpgradeResult(42, (1.0, 1.0), (0.4, 0.4), 1.0)
        with pytest.raises(ConfigurationError, match="unknown product"):
            session.commit_upgrade(bogus)


class TestRandomizedInterleavings:
    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_session_equals_fresh_recomputation(self, data):
        rng_seed = data.draw(st.integers(0, 10_000), label="seed")
        rng = np.random.default_rng(rng_seed)
        session = MarketSession(2, paper_cost_model(2), max_entries=8)
        for p in rng.random((30, 2)):
            session.add_competitor(tuple(p))
        for p in 1 + rng.random((10, 2)):
            session.add_product(tuple(p))
        n_ops = data.draw(st.integers(0, 12), label="n_ops")
        for _ in range(n_ops):
            op = data.draw(
                st.sampled_from(
                    ["add_c", "add_p", "del_c", "del_p", "commit"]
                )
            )
            if op == "add_c":
                session.add_competitor(tuple(rng.random(2)))
            elif op == "add_p":
                session.add_product(tuple(1 + rng.random(2)))
            elif op == "del_c" and session.competitor_count > 1:
                cid = next(iter(session._competitor_points))
                session.remove_competitor(cid)
            elif op == "del_p" and session.product_count > 1:
                pid = next(iter(session._product_points))
                session.remove_product(pid)
            elif op == "commit" and session.product_count:
                results = session.top_k(1).results
                if results:
                    session.commit_upgrade(results[0])
        competitors, products = session.snapshot()
        if not products:
            return
        outcome = session.top_k(3)
        oracle = brute_force_topk(
            competitors or np.zeros((0, 2)),
            products,
            session.cost_model,
            k=3,
        )
        assert outcome.costs == pytest.approx([r.cost for r in oracle])


class TestEpochsAndListeners:
    def test_epochs_bump_per_side(self, session):
        assert session.epoch == (0, 0)
        cid = session.add_competitor((0.5, 0.5))
        pid = session.add_product((1.5, 1.5))
        assert session.epoch == (1, 1)
        session.remove_competitor(cid)
        session.remove_product(pid)
        assert session.epoch == (2, 2)

    def test_failed_mutations_do_not_bump(self, session):
        session.remove_competitor(123)
        session.remove_product(456)
        assert session.epoch == (0, 0)

    def test_listener_sees_every_mutation(self, session):
        events = []
        session.add_mutation_listener(events.append)
        cid = session.add_competitor((0.4, 0.4))
        pid = session.add_product((1.2, 1.2))
        session.remove_competitor(cid)
        result = session.top_k(1).results[0]
        session.commit_upgrade(result)
        session.remove_mutation_listener(events.append)
        session.add_product((1.8, 1.8))
        assert [(e.side, e.action) for e in events] == [
            ("competitor", "add"),
            ("product", "add"),
            ("competitor", "remove"),
            ("product", "upgrade"),
        ]
        upgrade_event = events[-1]
        assert upgrade_event.old_point == (1.2, 1.2)
        assert upgrade_event.point == result.upgraded

    def test_from_points_matches_incremental_build(self):
        rng = np.random.default_rng(9)
        competitors = [tuple(p) for p in rng.random((60, 2))]
        products = [tuple(1 + p) for p in rng.random((20, 2))]
        bulk = MarketSession.from_points(competitors, products)
        incremental = MarketSession(2, paper_cost_model(2))
        for c in competitors:
            incremental.add_competitor(c)
        for p in products:
            incremental.add_product(p)
        assert bulk.top_k(5).costs == pytest.approx(
            incremental.top_k(5).costs
        )

    def test_dominance_region_predicate(self, session):
        session.add_product((1.0, 1.0))
        assert session.any_product_in_dominance_region((0.5, 0.5))
        assert not session.any_product_in_dominance_region((1.5, 0.5))
