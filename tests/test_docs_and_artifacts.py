"""Documentation and recorded-artifact integrity tests.

* The usage examples embedded in docstrings must actually run (doctest).
* The recorded figure results shipped in ``benchmarks/results/`` must stay
  well-formed and complete — EXPERIMENTS.md's appendix is generated from
  them.
"""

import doctest
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

EXPECTED_FIGURES = {
    "fig4", "fig5",
    "fig6a", "fig6b", "fig6c",
    "fig7a", "fig7b", "fig7c",
    "fig8a", "fig8b", "fig8c",
    "fig9a", "fig9b", "fig9c",
    "fig10", "fig11",
}

DOCTEST_MODULES = [
    "repro.core.api",
    "repro.core.session",
    "repro.data.categorical",
    "repro.costs.calibration",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_docstring_examples_run(module_name):
    import importlib

    module = importlib.import_module(module_name)
    failures, attempted = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS
    )[:2]
    assert attempted > 0, f"{module_name} lost its doctest examples"
    assert failures == 0


class TestRecordedResults:
    @pytest.fixture(scope="class")
    def results(self):
        if not RESULTS_DIR.is_dir():
            pytest.skip("no recorded results in this checkout")
        loaded = {}
        for path in RESULTS_DIR.glob("fig*.json"):
            loaded[path.stem] = json.loads(path.read_text())
        if not loaded:
            pytest.skip("no recorded results in this checkout")
        return loaded

    def test_every_figure_recorded(self, results):
        assert EXPECTED_FIGURES <= set(results)

    def test_series_are_rectangular(self, results):
        for fid, data in results.items():
            lengths = {
                len(cells) for cells in data["series"].values()
            }
            assert len(lengths) == 1, f"{fid}: ragged series"
            for cells in data["series"].values():
                for cell in cells:
                    assert cell["seconds"] >= 0.0
                    assert isinstance(cell["counters"], dict)

    def test_titles_record_the_scale(self, results):
        for fid, data in results.items():
            if fid in ("fig4", "fig5"):
                continue  # wine figures run at the paper's own sizes
            assert "paper /" in data["title"], fid

    def test_progressive_figures_cover_both_modes(self, results):
        for fid in ("fig5", "fig10", "fig11"):
            labels = set(results[fid]["series"])
            assert any(label.endswith("[paper]") for label in labels), fid
            assert any(
                not label.endswith("[paper]") for label in labels
            ), fid

    def test_documented_headline_shapes_hold(self, results):
        """The strongest EXPERIMENTS.md claims, asserted against the data."""
        # Fig 4: basic probing is the slowest algorithm on every combo.
        fig4 = results["fig4"]["series"]
        for i in range(len(fig4["basic-probing"])):
            basic = fig4["basic-probing"][i]["seconds"]
            for label, cells in fig4.items():
                if label != "basic-probing":
                    assert basic > cells[i]["seconds"], (label, i)
        # Fig 6b: probing degrades with |T| while the join stays far below.
        fig6b = results["fig6b"]["series"]
        probing = [c["seconds"] for c in fig6b["probing"]]
        join = [c["seconds"] for c in fig6b["join-nlb"]]
        assert probing[-1] > 5 * probing[0]
        assert all(j < p for j, p in zip(join, probing))
        # Fig 10: paper-mode bounds are the faster (pruning) variant.
        fig10 = results["fig10"]["series"]
        assert (
            fig10["join-clb[paper]"][0]["seconds"]
            < fig10["join-clb"][0]["seconds"]
        )


class TestServeBaseline:
    def test_recorded_serve_baseline_is_coherent(self):
        path = RESULTS_DIR / "BENCH_serve.json"
        if not path.exists():
            pytest.skip("no recorded serving baseline in this checkout")
        report = json.loads(path.read_text())
        assert report["speedup"] >= 2.0
        assert (
            report["cached"]["throughput_rps"]
            > report["cold"]["throughput_rps"]
        )
        assert report["cold"]["cache_hits"] == 0
        assert report["cached"]["cache_hit_rate"] > 0.5
        for mode in ("cold", "cached"):
            assert report[mode]["requests"] == report["workload"]["requests"]


class TestShardBaseline:
    def test_recorded_shard_baseline_is_coherent(self):
        path = RESULTS_DIR / "BENCH_shard.json"
        if not path.exists():
            pytest.skip("no recorded sharded baseline in this checkout")
        report = json.loads(path.read_text())
        # Scaling numbers are machine-relative: the report must say what
        # it ran on, and every run must have finished crash-free with
        # the full stream served.
        assert report["machine"]["cpu_count"] >= 1
        expected = report["workload"]["requests"]
        runs = report["runs"]
        assert [r["processes"] for r in runs] == [1, 2, 4, 8]
        for run in runs:
            assert run["shards"] >= run["processes"]
            for mode in ("cold", "cached"):
                cell = run[mode]
                assert cell["requests"] == expected
                assert cell["writes"] >= 1
                assert cell["worker_crashes"] == 0
                assert cell["throughput_rps"] > 0
            assert run["scaling_vs_baseline"] > 0
        for mode in ("cold", "cached"):
            assert report["baseline"][mode]["requests"] == expected
