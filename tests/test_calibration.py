"""Tests for attribute-cost calibration (least-squares fitting)."""

import numpy as np
import pytest

from repro.costs.attribute import (
    ExponentialCost,
    LinearCost,
    PiecewiseLinearCost,
    ReciprocalCost,
)
from repro.costs.calibration import (
    fit_attribute_cost,
    fit_unit_costs,
    fit_exponential,
    fit_linear,
    fit_piecewise,
    fit_reciprocal,
)
from repro.exceptions import CostFunctionError

V = np.linspace(0.1, 2.0, 60)
RNG = np.random.default_rng(17)


class TestFamilyFits:
    def test_linear_recovers_parameters(self):
        c = 10.0 - 3.0 * V
        result = fit_linear(V, c)
        assert isinstance(result.cost, LinearCost)
        assert result.cost.intercept == pytest.approx(10.0, abs=1e-9)
        assert result.cost.slope == pytest.approx(3.0, abs=1e-9)
        assert result.rmse < 1e-9

    def test_linear_clamps_upward_slope(self):
        c = 1.0 + 2.0 * V  # increasing: invalid for upgrading costs
        result = fit_linear(V, c)
        assert result.cost.slope == 0.0
        # Flat at the mean: still monotone (non-increasing).
        assert result.cost(0.0) == result.cost(5.0)

    def test_reciprocal_recovers_scale(self):
        c = 3.0 / (V + 0.1)
        result = fit_reciprocal(V, c, offsets=[0.05, 0.1, 0.5])
        assert isinstance(result.cost, ReciprocalCost)
        assert result.cost.offset == pytest.approx(0.1)
        assert result.cost.scale == pytest.approx(3.0, rel=1e-6)

    def test_exponential_recovers_parameters(self):
        c = 2.0 * np.exp(-1.5 * V)
        result = fit_exponential(V, c)
        assert isinstance(result.cost, ExponentialCost)
        assert result.cost.scale == pytest.approx(2.0, rel=1e-6)
        assert result.cost.rate == pytest.approx(1.5, rel=1e-6)

    def test_exponential_requires_positive_costs(self):
        with pytest.raises(CostFunctionError):
            fit_exponential(V, np.linspace(1.0, -1.0, 60))

    def test_piecewise_is_monotone(self):
        c = 5.0 / (V + 0.2) + RNG.normal(0, 0.05, len(V))
        result = fit_piecewise(V, c)
        assert isinstance(result.cost, PiecewiseLinearCost)
        samples = [result.cost(x) for x in np.linspace(0.1, 2.0, 40)]
        assert all(a >= b - 1e-9 for a, b in zip(samples, samples[1:]))

    def test_piecewise_segment_validation(self):
        with pytest.raises(CostFunctionError):
            fit_piecewise(V, 1.0 / V, segments=1)


class TestInputValidation:
    def test_too_few_points(self):
        with pytest.raises(CostFunctionError):
            fit_linear([1.0, 2.0], [1.0, 0.5])

    def test_mismatched_lengths(self):
        with pytest.raises(CostFunctionError):
            fit_linear([1.0, 2.0, 3.0], [1.0, 0.5])

    def test_degenerate_values(self):
        with pytest.raises(CostFunctionError):
            fit_linear([1.0, 1.0, 1.0], [3.0, 2.0, 1.0])


class TestModelSelection:
    def test_selects_reciprocal_for_reciprocal_data(self):
        c = 3.0 / (V + 0.1)
        assert fit_attribute_cost(V, c).family == "reciprocal"

    def test_selects_linear_for_linear_data(self):
        c = 10.0 - 3.0 * V
        assert fit_attribute_cost(V, c).family == "linear"

    def test_selects_exponential_for_exponential_data(self):
        c = 2.0 * np.exp(-2.0 * V)
        assert fit_attribute_cost(V, c).family == "exponential"

    def test_fitted_cost_usable_in_a_model(self):
        from repro.core.api import top_k_upgrades
        from repro.costs.model import CostModel

        c = 3.0 / (V + 0.1) + RNG.normal(0, 0.01, len(V))
        fitted = fit_attribute_cost(V, c).cost
        model = CostModel([fitted, fitted])
        outcome = top_k_upgrades(
            [(0.5, 0.5)], [(1.0, 1.0)], cost_model=model
        )
        assert outcome.results[0].cost > 0

    def test_noisy_data_still_fits_best_family(self):
        c = 3.0 / (V + 0.1) + RNG.normal(0, 0.02, len(V))
        result = fit_attribute_cost(V, c)
        assert result.family in ("reciprocal", "piecewise")
        assert result.rmse < 0.2

    def test_repr(self):
        result = fit_linear(V, 10.0 - 3.0 * V)
        assert "linear" in repr(result)


class TestUnitCostFit:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(170)
        true = np.array([5e-6, 2e-6, 5e-7])
        x = rng.uniform(10, 1e6, (40, 3))
        t = x @ true
        fit = fit_unit_costs(x, t)
        assert np.allclose(fit.coefficients, true, rtol=1e-6)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)
        assert fit.predict(x[0]) == pytest.approx(float(t[0]))

    def test_clamps_negative_coefficients_to_zero(self):
        # Second feature is anti-correlated with runtime; an
        # unconstrained fit would give it a negative weight.
        rng = np.random.default_rng(171)
        x = rng.uniform(10, 1e4, (60, 2))
        t = 3e-6 * x[:, 0] - 1e-7 * x[:, 1]
        fit = fit_unit_costs(x, t)
        assert all(u >= 0 for u in fit.coefficients)
        assert fit.coefficients[1] == 0.0

    def test_noisy_observations(self):
        rng = np.random.default_rng(172)
        true = np.array([1e-5, 3e-7])
        x = rng.uniform(1e3, 1e6, (80, 2))
        t = x @ true
        t *= rng.uniform(0.9, 1.1, len(t))
        fit = fit_unit_costs(x, t)
        assert fit.coefficients[0] == pytest.approx(1e-5, rel=0.3)
        assert fit.coefficients[1] == pytest.approx(3e-7, rel=0.3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(CostFunctionError):
            fit_unit_costs([[1.0, 2.0]], [1.0, 2.0])
        with pytest.raises(CostFunctionError):
            fit_unit_costs([[1.0, 2.0]], [1.0])  # fewer rows than cols
