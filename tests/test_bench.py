"""Tests for the experiment harness (workloads, runners, figures)."""

import json

import pytest

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import ALGORITHMS, run_cell
from repro.bench.workloads import (
    clear_cache,
    synthetic_workload,
    wine_workload,
)
from repro.exceptions import ConfigurationError


class TestWorkloads:
    def test_synthetic_shapes(self):
        w = synthetic_workload("independent", 200, 40, 3, seed=1)
        assert w.competitors.shape == (200, 3)
        assert w.products.shape == (40, 3)
        assert w.dims == 3

    def test_trees_built_lazily_and_cached(self):
        clear_cache()
        w = synthetic_workload("independent", 100, 20, 2, seed=2)
        assert w._tree_p is None
        tree = w.competitor_tree
        assert w.competitor_tree is tree
        assert len(tree) == 100
        assert len(w.product_tree) == 20

    def test_workload_cache_returns_same_object(self):
        a = synthetic_workload("independent", 100, 20, 2, seed=3)
        b = synthetic_workload("independent", 100, 20, 2, seed=3)
        assert a is b
        c = synthetic_workload("independent", 100, 20, 2, seed=4)
        assert c is not a

    def test_wine_workload(self):
        w = wine_workload("c,s", t_size=200)
        assert w.products.shape == (200, 2)
        assert w.competitors.shape[0] == 4898 - 200

    def test_repr(self):
        w = synthetic_workload("independent", 100, 20, 2, seed=3)
        assert "|P|=100" in repr(w)


class TestRunCell:
    @pytest.fixture(scope="class")
    def workload(self):
        return synthetic_workload("independent", 300, 60, 2, seed=5)

    def test_unknown_algorithm(self, workload):
        with pytest.raises(ConfigurationError):
            run_cell("dijkstra", workload)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_runs(self, workload, algorithm):
        outcome = run_cell(algorithm, workload, k=2)
        assert len(outcome.results) == 2
        assert outcome.report.elapsed_s >= 0.0

    def test_algorithms_agree(self, workload):
        costs = {
            a: run_cell(a, workload, k=3).costs for a in ALGORITHMS
        }
        reference = costs["probing"]
        for algorithm, got in costs.items():
            assert got == pytest.approx(reference), algorithm

    def test_t_limit_applies_to_probing(self, workload):
        outcome = run_cell("probing", workload, k=1, t_limit=10)
        assert outcome.report.counters.upgrade_calls == 10


class TestFigures:
    def test_registry_covers_every_panel(self):
        expected = {
            "fig4", "fig5",
            "fig6a", "fig6b", "fig6c",
            "fig7a", "fig7b", "fig7c",
            "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig9c",
            "fig10", "fig11",
        }
        assert set(FIGURES) == expected

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            run_figure("fig99")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            run_figure("fig6a", scale=0)

    def test_quick_synthetic_panel(self):
        # Tiny scale: paper cardinalities / 2000 -> hundreds of points.
        result = run_figure("fig6a", scale=2000, quick=True)
        assert set(result.series) == {"probing", "join-nlb"}
        for cells in result.series.values():
            assert len(cells) == 2  # endpoints only in quick mode
            assert all(seconds >= 0 for _, seconds, _ in cells)

    def test_quick_bounds_panel(self):
        result = run_figure("fig8c", scale=2000, quick=True)
        assert set(result.series) == {"join-nlb", "join-clb", "join-alb"}

    def test_quick_progressive_panel(self):
        result = run_figure("fig10", scale=2000, quick=True)
        cells = result.series["join-clb"]
        ks = [int(x) for x, _, _ in cells]
        assert ks == [1, 20]
        times = [s for _, s, _ in cells]
        assert times[0] <= times[1] + 1e-9

    def test_format_table_renders(self):
        result = run_figure("fig8c", scale=2000, quick=True)
        text = result.format_table()
        assert "fig8c" in text
        assert "join-alb" in text
        assert "work counters" in text

    @pytest.mark.slow
    def test_quick_wine_panel(self):
        result = run_figure("fig4", quick=True)
        assert "basic-probing" in result.series
        assert "join-clb[paper]" in result.series
        # Paper shape: basic probing is the slowest algorithm everywhere.
        for i, _ in enumerate(result.series["basic-probing"]):
            basic = result.series["basic-probing"][i][1]
            improved = result.series["probing"][i][1]
            assert basic > improved

    def test_json_round_trip(self, tmp_path):
        result = run_figure("fig8c", scale=2000, quick=True)
        path = result.save_json(tmp_path)
        data = json.loads(path.read_text())
        assert data["figure_id"] == "fig8c"
        assert set(data["series"]) == set(result.series)
