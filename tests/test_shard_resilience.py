"""Degraded-mode shard resilience: deadlines, hedging, breakers.

Three layers of coverage:

* **Unit** — :class:`CircuitBreaker` state machine under a fake clock,
  :class:`HedgePolicy` calibration.
* **Deterministic chaos** — seeded transport faults
  (``shard.transport.drop`` / ``.dup`` / ``.delay``) injected
  coordinator-side: duplicated commands must not change answers
  (idempotent workers), dropped commands must be recovered by hedging,
  sustained drops must trip the breakers into labeled zero-coverage
  answers and the supervisor's half-open probes must re-admit the
  workers afterwards.
* **Acceptance** — a worker SIGKILLed mid-workload under transport
  delays: no response may be an unlabeled lie.  Full-coverage answers
  (partial or not) must be exact prefixes of the single-process
  oracle's canonical order; reduced-coverage answers must be
  per-product lower bounds on the true costs; the tail stays bounded
  by the propagated deadline (p95 within 2x the healthy baseline or
  the deadline budget).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import (
    CostModel,
    EngineConfig,
    LinearCost,
    MarketSession,
    ProductQuery,
    TopKQuery,
    UpgradeEngine,
)
from repro.reliability.faults import FaultPlan, FaultSpec, inject_faults
from repro.serve.engine import QueryResponse
from repro.shard import ShardedUpgradeEngine
from repro.shard.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    HEDGE_FACTOR,
    HEDGE_MIN_SAMPLES,
    CircuitBreaker,
    HedgePolicy,
)

DIMS = 3
RECOVERY_TIMEOUT = 30


def make_session(seed, n_competitors=30, n_products=18):
    rng = random.Random(seed)
    session = MarketSession(
        DIMS, CostModel([LinearCost(10.0, 1.0) for _ in range(DIMS)])
    )
    for _ in range(n_competitors):
        session.add_competitor(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    for _ in range(n_products):
        session.add_product(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    return session


# ---------------------------------------------------------------------------
# CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, cooldown_s=1.0, now=clock)
        assert b.allow()
        for _ in range(2):
            b.record_failure()
        assert b.state == BREAKER_CLOSED and b.allow()
        b.record_failure()
        assert b.state == BREAKER_OPEN and not b.allow()
        assert b.trips == 1

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == BREAKER_CLOSED  # never two in a row

    def test_probe_only_after_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=1.0, now=clock)
        b.record_failure()
        assert b.state == BREAKER_OPEN
        assert not b.should_probe()  # cooldown not elapsed
        clock.t = 1.5
        assert b.should_probe()
        assert b.state == BREAKER_HALF_OPEN
        assert not b.should_probe()  # probe slot already claimed

    def test_failed_probe_doubles_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=1.0, now=clock)
        b.record_failure()
        clock.t = 1.5
        assert b.should_probe()
        b.record_failure()  # probe failed
        assert b.state == BREAKER_OPEN
        assert b.snapshot()["cooldown_s"] == 2.0
        clock.t = 3.0  # only 1.5s since re-open: not due yet
        assert not b.should_probe()
        clock.t = 3.6
        assert b.should_probe()
        b.record_success()  # probe answered: closed, cooldown reset
        assert b.state == BREAKER_CLOSED and b.allow()
        assert b.snapshot()["cooldown_s"] == 1.0

    def test_threshold_zero_disables(self):
        b = CircuitBreaker(threshold=0)
        for _ in range(50):
            b.record_failure()
        assert b.state == BREAKER_CLOSED and b.allow()
        assert b.trips == 0


class TestHedgePolicy:
    def test_fixed_delay_always_armed(self):
        policy = HedgePolicy(fixed_delay_s=0.02)
        assert policy.delay() == 0.02

    def test_adaptive_unarmed_until_calibrated(self):
        policy = HedgePolicy()
        for _ in range(HEDGE_MIN_SAMPLES - 1):
            policy.observe(0.01)
        assert policy.delay() is None
        policy.observe(0.01)
        delay = policy.delay()
        assert delay == pytest.approx(
            max(0.01, 0.01 * HEDGE_FACTOR)
        )

    def test_adaptive_tracks_p95(self):
        policy = HedgePolicy()
        for v in [0.001] * 90 + [0.1] * 10:
            policy.observe(v)
        assert policy.delay() == pytest.approx(0.1 * HEDGE_FACTOR)

    def test_counters(self):
        policy = HedgePolicy(fixed_delay_s=0.01)
        policy.record_hedge()
        policy.record_hedge()
        policy.record_win()
        snap = policy.snapshot()
        assert snap["hedges"] == 2 and snap["wins"] == 1


# ---------------------------------------------------------------------------
# transport faults against a live sharded engine


def sharded_engine(session, **overrides):
    base = dict(
        workers=0, method="join", processes=2, shards=2, cache=False
    )
    base.update(overrides)
    return ShardedUpgradeEngine(session, EngineConfig(**base))


@pytest.fixture
def oracle():
    engine = UpgradeEngine(
        make_session(seed=2012),
        EngineConfig(workers=0, method="join", cache=False),
    )
    yield engine
    engine.close()


def test_dup_faults_leave_answers_bit_identical(oracle):
    # Duplicated commands exercise the workers' idempotent handling:
    # skylines is a pure read, topk_next dedupes on its sequence number.
    plan = FaultPlan(
        seed=7,
        points={
            "shard.transport.dup": FaultSpec(rate=1.0, kind="corrupt")
        },
    )
    engine = sharded_engine(make_session(seed=2012))
    try:
        expected_topk = oracle.query(TopKQuery(k=8)).results
        expected_prod = oracle.query(ProductQuery(3)).results
        with inject_faults(plan):
            topk = engine.query(TopKQuery(k=8))
            prod = engine.query(ProductQuery(3))
        assert not topk.partial and topk.coverage == 1.0
        assert topk.results == expected_topk
        assert not prod.partial and prod.results == expected_prod
    finally:
        engine.close()


def test_hedging_recovers_dropped_commands(oracle):
    # The first submits are dropped (max_fires bounds the chaos); the
    # fixed-delay hedge re-issues them and the answer completes intact.
    plan = FaultPlan(
        seed=7,
        points={
            "shard.transport.drop": FaultSpec(
                rate=1.0, kind="corrupt", max_fires=2
            )
        },
    )
    engine = sharded_engine(
        make_session(seed=2012),
        hedge_delay_s=0.05,
        shard_rpc_timeout_s=30.0,
    )
    try:
        expected = oracle.query(TopKQuery(k=8)).results
        with inject_faults(plan):
            response = engine.query(TopKQuery(k=8))
        assert not response.partial and response.coverage == 1.0
        assert response.results == expected
        hedge = engine.metrics()["shard_health"]["hedge"]
        assert hedge["hedges"] >= 1
        assert hedge["wins"] >= 1
    finally:
        engine.close()


def test_sustained_drops_trip_breakers_then_recover(oracle):
    # Sustained transport loss: RPC-bound timeouts charge the breakers,
    # queries degrade to labeled zero-coverage answers instead of
    # stalling, and once the chaos lifts the supervisor's half-open
    # ping probes re-admit the workers without any query traffic.
    plan = FaultPlan(
        seed=7,
        points={
            "shard.transport.drop": FaultSpec(rate=1.0, kind="corrupt")
        },
    )
    engine = sharded_engine(
        make_session(seed=2012),
        breaker_threshold=2,
        breaker_cooldown_s=0.2,
        health_interval_s=0.05,
        shard_rpc_timeout_s=0.25,
    )
    try:
        expected = oracle.query(TopKQuery(k=6)).results
        with inject_faults(plan):
            for _ in range(3):
                response = engine.query(TopKQuery(k=6))
                assert response.partial
            # Both breakers tripped: the last answers came from no
            # shards at all, quickly, and said so.
            assert response.coverage == 0.0
            assert response.results == []
            health = engine.metrics()["shard_health"]
            assert health["breaker_trips"] >= 2
            assert health["breakers_open"] == 2
            assert health["rpc_timeouts"] >= 2
            # A breaker-open round is skipped outright, not timed out.
            t0 = time.monotonic()
            skipped = engine.query(TopKQuery(k=6))
            assert time.monotonic() - t0 < 0.2
            assert skipped.partial and skipped.coverage == 0.0
            assert engine.metrics()["shard_health"]["breaker_skips"] >= 2
        deadline = time.monotonic() + RECOVERY_TIMEOUT
        while time.monotonic() < deadline:
            if engine.metrics()["shard_health"]["breakers_open"] == 0:
                break
            time.sleep(0.05)
        health = engine.metrics()["shard_health"]
        assert health["breakers_open"] == 0, health
        recovered = engine.query(TopKQuery(k=6))
        assert not recovered.partial and recovered.coverage == 1.0
        assert recovered.results == expected
        for proc in health["per_process"]:
            assert proc["breaker"]["probes"] >= 1
            assert 0.0 <= proc["health"] <= 1.0
    finally:
        engine.close()


def test_execute_batch_surfaces_partial_and_coverage():
    # Satellite of the degraded-answer contract: raise_errors=False must
    # yield labeled QueryResponse objects under total shard loss, not
    # opaque exception objects.
    plan = FaultPlan(
        seed=7,
        points={
            "shard.transport.drop": FaultSpec(rate=1.0, kind="corrupt")
        },
    )
    engine = sharded_engine(
        make_session(seed=2012),
        breaker_threshold=2,
        shard_rpc_timeout_s=0.25,
    )
    try:
        with inject_faults(plan):
            out = engine.execute_batch(
                [TopKQuery(k=4), ProductQuery(1), ProductQuery(2)],
                raise_errors=False,
            )
        assert all(isinstance(r, QueryResponse) for r in out)
        for r in out:
            assert r.partial
            assert r.coverage == 0.0
            assert r.results == []
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# deadline propagation


def test_zero_deadline_yields_labeled_partial():
    engine = sharded_engine(make_session(seed=2012))
    try:
        response = engine.query(TopKQuery(k=5, deadline_s=0.0))
        assert response.partial
        assert 0.0 <= response.coverage <= 1.0
        prod = engine.query(ProductQuery(0, deadline_s=0.0))
        assert prod.partial and prod.results == []
    finally:
        engine.close()


def test_deadline_partials_are_prefixes_of_canonical_order(oracle):
    # Graduated budgets: every full-coverage answer — truncated or not —
    # must be an exact prefix of the oracle's canonical order, and a
    # reduced-coverage answer a per-product lower bound on true costs.
    k = 12
    full = oracle.query(TopKQuery(k=k)).results
    ref_cost = {
        r.record_id: r.cost
        for rid in range(18)
        for r in oracle.query(ProductQuery(rid)).results
    }
    engine = sharded_engine(make_session(seed=2012))
    try:
        for deadline in (0.0002, 0.001, 0.005, 0.05, None):
            response = engine.query(TopKQuery(k=k, deadline_s=deadline))
            if response.coverage == 1.0:
                assert (
                    response.results == full[: len(response.results)]
                ), f"not a prefix at deadline={deadline}"
                if not response.partial:
                    assert response.results == full
            else:
                assert response.partial
                for r in response.results:
                    assert r.cost <= ref_cost[r.record_id] + 1e-9
        untimed = engine.query(TopKQuery(k=k))
        assert not untimed.partial and untimed.results == full
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# acceptance: SIGKILL mid-workload under transport delays


def test_worker_kill_mid_workload_acceptance(oracle):
    session = make_session(seed=2012)
    engine = sharded_engine(session, breaker_cooldown_s=0.2)
    k = 8
    full = oracle.query(TopKQuery(k=k)).results
    ref_cost = {
        r.record_id: r.cost
        for rid in range(18)
        for r in oracle.query(ProductQuery(rid)).results
    }

    def workload(n, deadline_s=None):
        rng = random.Random(n)
        queries = []
        for i in range(n):
            if i % 4 == 0:
                queries.append(TopKQuery(k=k, deadline_s=deadline_s))
            else:
                queries.append(
                    ProductQuery(rng.randrange(18), deadline_s=deadline_s)
                )
        return queries

    try:
        # Healthy baseline (also calibrates the adaptive hedge delay).
        healthy = engine.execute_batch(workload(40))
        lat = sorted(r.elapsed_s for r in healthy)
        p95_healthy = lat[int(0.95 * (len(lat) - 1))]
        assert all(not r.partial for r in healthy)

        # Chaos: kill one worker mid-workload, armed transport delays,
        # every request carrying a deadline derived from the healthy
        # tail so deadline propagation itself bounds the p95.
        budget = max(0.25, 1.8 * p95_healthy)
        plan = FaultPlan(
            seed=13,
            points={
                "shard.transport.delay": FaultSpec(
                    rate=0.1, kind="latency", latency_s=0.005
                )
            },
        )
        chaos = workload(60, deadline_s=budget)
        responses = []
        with inject_faults(plan):
            responses += engine.execute_batch(
                chaos[:10], raise_errors=False
            )
            engine._handles[1].kill()
            for lo in range(10, len(chaos), 10):
                responses += engine.execute_batch(
                    chaos[lo:lo + 10], raise_errors=False
                )

        # 1. Every response is a labeled QueryResponse — complete, or
        #    partial with a meaningful coverage. No exceptions leak.
        assert all(isinstance(r, QueryResponse) for r in responses)
        for q, r in zip(chaos, responses):
            assert 0.0 <= r.coverage <= 1.0
            if not r.partial:
                assert r.coverage == 1.0
            if isinstance(q, TopKQuery):
                # 2. Full-coverage top-k answers are verified prefixes
                #    of the oracle's canonical order; reduced-coverage
                #    answers are lower bounds over the reduced market.
                if r.coverage == 1.0:
                    assert r.results == full[: len(r.results)]
                else:
                    for res in r.results:
                        assert (
                            res.cost <= ref_cost[res.record_id] + 1e-9
                        )
            elif r.results:
                if r.coverage == 1.0:
                    assert r.results[0].cost == pytest.approx(
                        ref_cost[q.product_id]
                    )
                else:
                    assert (
                        r.results[0].cost
                        <= ref_cost[q.product_id] + 1e-9
                    )

        # 3. The tail stayed bounded: p95 within 2x the healthy
        #    baseline or the deadline budget, whichever dominates.
        chaos_lat = sorted(r.elapsed_s for r in responses)
        p95_chaos = chaos_lat[int(0.95 * (len(chaos_lat) - 1))]
        assert p95_chaos <= 2.0 * max(p95_healthy, budget), (
            f"p95 {p95_chaos:.3f}s vs healthy {p95_healthy:.3f}s "
            f"(budget {budget:.3f}s)"
        )

        # 4. After the respawn the engine serves exact answers again.
        deadline = time.monotonic() + RECOVERY_TIMEOUT
        while time.monotonic() < deadline:
            if all(h.alive for h in engine._handles):
                break
            time.sleep(0.1)
        final = engine.query(TopKQuery(k=k))
        assert not final.partial and final.results == full
        assert engine.metrics()["shard_health"]["per_process"]
    finally:
        engine.close()
