"""Tests for Algorithm 3 (getDominatingSky) and its multi-root variant."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dominators import (
    dominators_brute_force,
    get_dominating_skyline,
    get_dominating_skyline_multi,
)
from repro.instrumentation import Counters
from repro.rtree.tree import RTree
from repro.skyline.bnl import bnl_skyline

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)
points_2d = st.lists(st.tuples(coord, coord), min_size=1, max_size=100)
query = st.tuples(
    st.floats(min_value=0, max_value=2, allow_nan=False),
    st.floats(min_value=0, max_value=2, allow_nan=False),
)


def reference(points, product):
    return sorted(bnl_skyline(dominators_brute_force(points, product)))


class TestGetDominatingSkyline:
    def test_empty_tree(self):
        assert get_dominating_skyline(RTree(2), (1.0, 1.0)) == []

    def test_no_dominators(self):
        tree = RTree.bulk_load([(0.9, 0.9)])
        assert get_dominating_skyline(tree, (0.5, 0.5)) == []

    def test_equal_point_is_not_a_dominator(self):
        tree = RTree.bulk_load([(0.5, 0.5)])
        assert get_dominating_skyline(tree, (0.5, 0.5)) == []

    def test_known_case(self):
        pts = [(0.1, 0.9), (0.4, 0.4), (0.9, 0.1), (0.6, 0.6), (0.95, 0.95)]
        tree = RTree.bulk_load(pts)
        sky = get_dominating_skyline(tree, (0.9, 0.9))
        # (0.6, 0.6) is a dominator but itself dominated by (0.4, 0.4);
        # (0.9, 0.1) dominates despite the equal first coordinate.
        assert sorted(sky) == [(0.1, 0.9), (0.4, 0.4), (0.9, 0.1)]

    def test_matches_reference_random(self):
        pts = np.random.default_rng(3).random((800, 2))
        tree = RTree.bulk_load(pts)
        for q in [(0.9, 0.9), (0.5, 0.5), (1.5, 1.5), (0.05, 0.05)]:
            got = sorted(get_dominating_skyline(tree, q))
            assert got == reference([tuple(p) for p in pts], q)

    def test_matches_reference_3d(self):
        pts = np.random.default_rng(4).random((500, 3))
        tree = RTree.bulk_load(pts)
        q = (0.8, 0.8, 0.8)
        got = sorted(get_dominating_skyline(tree, q))
        assert got == reference([tuple(p) for p in pts], q)

    def test_results_in_mindist_order(self):
        pts = np.random.default_rng(5).random((400, 2))
        tree = RTree.bulk_load(pts)
        sky = get_dominating_skyline(tree, (1.2, 1.2))
        sums = [sum(p) for p in sky]
        assert sums == sorted(sums)

    def test_prunes_outside_adr(self):
        pts = np.vstack(
            [
                np.random.default_rng(6).random((300, 2)) * 0.4,
                0.6 + np.random.default_rng(7).random((300, 2)) * 0.4,
            ]
        )
        tree = RTree.bulk_load(pts)
        stats = Counters()
        get_dominating_skyline(tree, (0.45, 0.45), stats)
        # The upper cluster lies outside ADR and must not be scanned.
        assert stats.points_scanned < 320

    def test_fp_sum_collision_regression(self):
        """Coordinate sums equal in fp, but one point dominates the other.

        ``1.0 + 7e-206 == 1.0`` in double precision, so both candidates
        share a heap key; the lexicographic tie-break must still pop the
        dominator first.  Original hypothesis falsifying example.
        """
        points = [(1.0, 7.277832964817326e-206), (1.0, 0.0)]
        tree = RTree.bulk_load(points)
        got = sorted(get_dominating_skyline(tree, (1.0, 1.0)))
        assert got == [(1.0, 0.0)]
        assert got == reference(points, (1.0, 1.0))

    @given(points_2d, query)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_property(self, points, q):
        tree = RTree.bulk_load(points, max_entries=4)
        got = sorted(set(get_dominating_skyline(tree, q)))
        assert got == reference(points, q)


class TestMultiRoot:
    def test_empty_roots(self):
        assert get_dominating_skyline_multi([], (1.0, 1.0)) == []

    def test_leaf_entry_roots(self):
        from repro.rtree.entry import Entry

        roots = [
            Entry.for_point((0.2, 0.2), 0),
            Entry.for_point((0.8, 0.8), 1),
            Entry.for_point((0.1, 0.5), 2),
        ]
        sky = get_dominating_skyline_multi(roots, (0.9, 0.9))
        assert sorted(sky) == [(0.1, 0.5), (0.2, 0.2)]

    def test_mixed_roots_match_single_tree(self):
        pts = np.random.default_rng(8).random((256, 2))
        tree = RTree.bulk_load(pts, max_entries=8)
        roots = list(tree.root.entries)
        q = (1.1, 1.1)
        multi = sorted(get_dominating_skyline_multi(roots, q))
        single = sorted(get_dominating_skyline(tree, q))
        assert multi == single
