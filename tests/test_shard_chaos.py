"""Chaos: shard worker processes killed under load.

The crash-containment contract, replayed across seeds and kill points:

1. **No hang** — every wait below is bounded; an in-flight request on a
   killed worker resolves (typed error or answer), never blocks forever.
2. **Typed failure or success** — a request racing a worker kill either
   completes correctly or fails with :class:`WorkerCrashError`; raw
   queue/pipe exceptions never leak.
3. **Respawn** — the killed process is replaced automatically, crash and
   respawn counters move, and *subsequent* queries answer correctly —
   bit-identical to a never-crashed single-process engine, even when the
   kill raced a catalog mutation (the eager segment republish is what
   makes the respawned worker consistent).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import (
    CostModel,
    EngineConfig,
    LinearCost,
    MarketSession,
    TopKQuery,
    UpgradeEngine,
)
from repro.exceptions import SkyUpError, WorkerCrashError
from repro.shard import ShardedUpgradeEngine

DIMS = 3
TIMEOUT = 120
RESPAWN_TIMEOUT = 60


def make_session(seed, n_competitors=30, n_products=18):
    rng = random.Random(seed)
    session = MarketSession(
        DIMS, CostModel([LinearCost(10.0, 1.0) for _ in range(DIMS)])
    )
    for _ in range(n_competitors):
        session.add_competitor(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    for _ in range(n_products):
        session.add_product(
            tuple(round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS))
        )
    return session


def respawn_count(engine):
    return sum(h.respawns for h in engine._handles)


def wait_for_respawn(engine, target, deadline_s=RESPAWN_TIMEOUT):
    """Wait until at least ``target`` respawns happened and all alive.

    Waiting on ``alive`` alone races the kill itself: right after
    ``kill()`` the SIGKILL may not have landed, so the old process still
    reports alive.  The respawn counter only moves after the monitor has
    observed the death and restarted the worker.
    """
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if respawn_count(engine) >= target and all(
            h.alive for h in engine._handles
        ):
            return
        time.sleep(0.1)
    raise AssertionError(
        f"workers did not respawn: {engine.shard_stats()}"
    )


@pytest.fixture
def engine():
    eng = ShardedUpgradeEngine(
        make_session(seed=2012),
        EngineConfig(workers=0, method="join", processes=2, shards=2),
    )
    yield eng
    eng.close()


def test_kill_idle_worker_then_query(engine):
    baseline = engine.query(TopKQuery(k=5)).results
    respawns = respawn_count(engine)
    engine._handles[0].kill()
    # The next query either races the death (typed failure) or lands
    # after the respawn (correct answer).  Both are acceptable; a hang
    # or an untyped error is not.
    try:
        engine.query(TopKQuery(k=5))
    except WorkerCrashError:
        pass
    wait_for_respawn(engine, respawns + 1)
    engine.topk_cache.invalidate()
    assert engine.query(TopKQuery(k=5)).results == baseline
    stats = engine.shard_stats()["per_process"][0]
    assert stats["crashes"] >= 1
    assert stats["respawns"] >= 1
    assert stats["alive"]


def test_kill_during_inflight_request_never_hangs(engine):
    engine.topk_cache.invalidate()
    outcome = {}

    def run():
        try:
            outcome["response"] = engine.query(TopKQuery(k=8))
        except SkyUpError as exc:
            outcome["error"] = exc

    respawns = respawn_count(engine)
    worker = threading.Thread(target=run)
    worker.start()
    engine._handles[1].kill()
    worker.join(TIMEOUT)
    assert not worker.is_alive(), "in-flight request hung after kill"
    if "error" in outcome:
        assert isinstance(outcome["error"], WorkerCrashError)
    else:
        assert len(outcome["response"].results) == 8
    wait_for_respawn(engine, respawns + 1)
    engine.topk_cache.invalidate()
    assert len(engine.query(TopKQuery(k=8)).results) == 8


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_kill_racing_mutation_stays_consistent(seed):
    rng = random.Random(seed)
    sharded = ShardedUpgradeEngine(
        make_session(seed=seed),
        EngineConfig(workers=0, method="join", processes=2, shards=2),
    )
    reference = UpgradeEngine(
        make_session(seed=seed), EngineConfig(workers=0, method="join")
    )
    try:
        kill_at = rng.randrange(4)
        kills = 0
        for step in range(4):
            if step == kill_at:
                sharded._handles[step % 2].kill()
                kills += 1
            point = tuple(
                round(rng.uniform(0.0, 10.0), 3) for _ in range(DIMS)
            )
            # The mutation may ack into a dead worker: the engine treats
            # that as benign (the respawn rebuilds from the republished
            # segment) — consistency afterwards is exactly the claim.
            sharded.add_competitor(point)
            reference.add_competitor(point)
        wait_for_respawn(sharded, kills)
        a = reference.query(TopKQuery(k=10)).results
        b = sharded.query(TopKQuery(k=10)).results
        assert a == b
    finally:
        sharded.close()
        reference.close()


def test_repeated_kills_keep_counting(engine):
    for round_no in range(2):
        engine._handles[0].kill()
        wait_for_respawn(engine, round_no + 1)
        engine.topk_cache.invalidate()
        assert engine.query(TopKQuery(k=3)).results
    stats = engine.shard_stats()["per_process"][0]
    assert stats["crashes"] == 2
    assert stats["respawns"] == 2
    assert engine.metrics()["reliability"]["worker_respawns"] >= 2
