"""PointBlock buffer-adoption edge cases and SharedBlock round trips.

The first half pins the :class:`~repro.kernels.block.PointBlock`
edge cases the shard tier leans on (``subset``/``take`` with empty
masks, non-contiguous and repeated indexes, dtype coercion; the
``from_buffers``/``copy_into`` adoption contract).  The second half
exercises :class:`~repro.shard.memory.SharedBlock` end to end: publish /
attach / republish visibility, capacity enforcement, owner-only unlink,
attach-in-a-spawned-child never destroying the coordinator's segments,
and no leaked ``/dev/shm`` entries after close + unlink.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionalityError
from repro.kernels.block import PointBlock
from repro.shard.memory import SegmentSpec, SharedBlock, padded_capacity
from repro.shard.spawn import make_process, make_queue

# ---------------------------------------------------------------------------
# PointBlock.subset / take edge cases


class TestSubsetTake:
    def block(self) -> PointBlock:
        pts = [(float(i), float(10 - i)) for i in range(6)]
        return PointBlock.from_points(pts, ids=[7, 5, 3, 1, 9, 11])

    def test_subset_empty_mask(self):
        block = self.block()
        sub = block.subset(np.zeros(6, dtype=bool))
        assert len(sub) == 0
        assert sub.dims == 2
        assert sub.points() == []
        assert list(sub.ids) == []

    def test_subset_coerces_int_and_list_masks(self):
        block = self.block()
        by_int = block.subset(np.array([1, 0, 1, 0, 1, 0]))
        by_list = block.subset([True, False, True, False, True, False])
        assert by_int.points() == by_list.points() == block.points()[::2]
        assert list(by_int.ids) == list(by_list.ids) == [7, 3, 9]

    def test_take_non_contiguous_and_repeated(self):
        block = self.block()
        taken = block.take([5, 0, 3, 3])
        assert taken.points() == [
            (5.0, 5.0),
            (0.0, 10.0),
            (3.0, 7.0),
            (3.0, 7.0),
        ]
        assert list(taken.ids) == [11, 7, 1, 1]

    def test_take_empty(self):
        taken = self.block().take([])
        assert len(taken) == 0
        assert taken.dims == 2

    def test_take_coerces_index_dtypes(self):
        block = self.block()
        small = block.take(np.array([4, 1], dtype=np.int32))
        assert list(small.ids) == [9, 5]
        assert small.points() == [(4.0, 6.0), (1.0, 9.0)]

    def test_take_result_is_independent(self):
        block = self.block()
        taken = block.take([0, 1])
        taken.append((99.0, 99.0), record_id=99)
        assert len(block) == 6
        assert block.point(0) == (0.0, 10.0)


# ---------------------------------------------------------------------------
# PointBlock.from_buffers / copy_into (the shared-memory adoption contract)


class TestBufferAdoption:
    def buffers(self, cap=8, dims=3):
        data = np.zeros((cap, dims), dtype=np.float64)
        ids = np.zeros(cap, dtype=np.int64)
        return data, ids

    def test_zero_copy_adoption(self):
        data, ids = self.buffers()
        data[0] = (1.0, 2.0, 3.0)
        ids[0] = 42
        block = PointBlock.from_buffers(data, ids, n=1)
        assert block.point(0) == (1.0, 2.0, 3.0)
        assert block.id_of(0) == 42
        data[0, 0] = 7.5  # writes through: the block wraps, not copies
        assert block.point(0) == (7.5, 2.0, 3.0)

    def test_append_past_capacity_detaches(self):
        data, ids = self.buffers(cap=1, dims=2)
        block = PointBlock.from_buffers(
            np.zeros((1, 2)), np.zeros(1, dtype=np.int64), n=1
        )
        block.append((5.0, 6.0), record_id=1)
        assert len(block) == 2
        assert data[0].tolist() == [0.0, 0.0]  # shared row untouched

    @pytest.mark.parametrize(
        "data,ids",
        [
            (np.zeros((4, 2), dtype=np.float32), np.zeros(4, np.int64)),
            (np.zeros((4, 2)), np.zeros(4, dtype=np.int32)),
            (np.zeros(4), np.zeros(4, dtype=np.int64)),
            (np.zeros((4, 2)), np.zeros(3, dtype=np.int64)),
            (np.zeros((4, 2))[:, ::-1], np.zeros(4, dtype=np.int64)),
        ],
    )
    def test_contract_violations_rejected(self, data, ids):
        with pytest.raises(DimensionalityError):
            PointBlock.from_buffers(data, ids)

    def test_live_count_bounds(self):
        data, ids = self.buffers(cap=4)
        with pytest.raises(DimensionalityError):
            PointBlock.from_buffers(data, ids, n=5)
        with pytest.raises(DimensionalityError):
            PointBlock.from_buffers(data, ids, n=-1)

    def test_copy_into_round_trip(self):
        block = PointBlock.from_points(
            [(1.0, 2.0), (3.0, 4.0)], ids=[10, 20]
        )
        data, ids = self.buffers(cap=5, dims=2)
        assert block.copy_into(data, ids) == 2
        back = PointBlock.from_buffers(data, ids, n=2)
        assert back.points() == block.points()
        assert list(back.ids) == [10, 20]

    def test_copy_into_rejects_bad_destinations(self):
        block = PointBlock.from_points([(1.0, 2.0), (3.0, 4.0)])
        with pytest.raises(DimensionalityError):
            block.copy_into(
                np.zeros((1, 2)), np.zeros(1, dtype=np.int64)
            )
        with pytest.raises(DimensionalityError):
            block.copy_into(
                np.zeros((4, 3)), np.zeros(4, dtype=np.int64)
            )


# ---------------------------------------------------------------------------
# SharedBlock


def shm_names(spec: SegmentSpec):
    return [spec.data_name, spec.ids_name]


def shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


ON_DEV_SHM = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(
    not ON_DEV_SHM, reason="POSIX shared memory not mounted at /dev/shm"
)


def test_padded_capacity_headroom():
    assert padded_capacity(0) == 16
    assert padded_capacity(10) == 16
    assert padded_capacity(100) == 150


class TestSharedBlock:
    def test_publish_and_read_back(self):
        block = SharedBlock.create("skyup-test-rt", dims=2, capacity=8)
        try:
            spec = block.publish([(1.0, 2.0), (3.0, 4.0)], [5, 9])
            assert spec.n == 2
            pb = block.as_block()
            assert pb.points() == [(1.0, 2.0), (3.0, 4.0)]
            assert list(pb.ids) == [5, 9]
        finally:
            block.close()
            block.unlink()

    def test_republish_in_place_is_visible_to_attachment(self):
        owner = SharedBlock.create("skyup-test-repub", dims=2, capacity=8)
        try:
            owner.publish([(1.0, 1.0)], [1])
            reader = SharedBlock.attach(owner.spec)
            try:
                assert reader.as_block(n=1).points() == [(1.0, 1.0)]
                new_spec = owner.publish(
                    [(2.0, 2.0), (3.0, 3.0)], [2, 3]
                )
                # Same segments, new row count: the attachment sees the
                # rewrite without remapping anything.
                assert reader.as_block(n=new_spec.n).points() == [
                    (2.0, 2.0),
                    (3.0, 3.0),
                ]
            finally:
                reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_publish_past_capacity_rejected(self):
        block = SharedBlock.create("skyup-test-cap", dims=1, capacity=2)
        try:
            with pytest.raises(ConfigurationError):
                block.publish([(1.0,), (2.0,), (3.0,)], [1, 2, 3])
        finally:
            block.close()
            block.unlink()

    def test_unlink_is_owner_only(self):
        owner = SharedBlock.create("skyup-test-owner", dims=1, capacity=4)
        try:
            owner.publish([(1.0,)], [1])
            reader = SharedBlock.attach(owner.spec)
            with pytest.raises(ConfigurationError):
                reader.unlink()
            reader.close()
        finally:
            owner.close()
            owner.unlink()

    @needs_dev_shm
    def test_close_unlink_leaves_no_segments(self):
        block = SharedBlock.create("skyup-test-leak", dims=2, capacity=4)
        names = shm_names(block.spec)
        assert all(shm_exists(n) for n in names)
        block.close()
        block.close()  # idempotent
        assert all(shm_exists(n) for n in names)  # close keeps data
        block.unlink()
        block.unlink()  # idempotent (FileNotFoundError tolerated)
        assert not any(shm_exists(n) for n in names)


# ---------------------------------------------------------------------------
# attach in a spawned child must never unlink the coordinator's segments


def _child_attach_read(spec: SegmentSpec, out_q) -> None:
    block = SharedBlock.attach(spec)
    try:
        out_q.put(block.as_block().points())
    finally:
        block.close()


@needs_dev_shm
def test_child_attach_does_not_unlink():
    owner = SharedBlock.create("skyup-test-child", dims=2, capacity=4)
    try:
        spec = owner.publish([(1.5, 2.5), (3.5, 4.5)], [1, 2])
        out_q = make_queue()
        proc = make_process(
            _child_attach_read, (spec, out_q), name="skyup-test-child"
        )
        proc.start()
        points = out_q.get(timeout=60)
        proc.join(60)
        assert points == [(1.5, 2.5), (3.5, 4.5)]
        assert proc.exitcode == 0
        # The child exited; the coordinator's segments must survive it.
        assert all(shm_exists(n) for n in shm_names(spec))
        assert owner.as_block().points() == [(1.5, 2.5), (3.5, 4.5)]
    finally:
        owner.close()
        owner.unlink()
    assert not any(shm_exists(n) for n in shm_names(owner.spec))
