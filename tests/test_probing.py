"""Tests for the probing algorithms (Algorithm 2 and its improved variant)."""

import numpy as np
import pytest

from repro.core.probing import (
    basic_probing,
    batch_probing,
    improved_probing,
)
from repro.core.verify import brute_force_topk, verify_results
from repro.costs.model import paper_cost_model
from repro.exceptions import ConfigurationError
from repro.rtree.tree import RTree

from conftest import make_mixed_instance


@pytest.fixture()
def instance():
    competitors, products = make_mixed_instance(seed=101)
    tree = RTree.bulk_load(competitors)
    model = paper_cost_model(2)
    return competitors, products, tree, model


class TestBasicProbing:
    def test_matches_oracle(self, instance):
        competitors, products, tree, model = instance
        oracle = brute_force_topk(competitors, products, model, k=10)
        outcome = basic_probing(tree, products, model, k=10)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )
        verify_results(outcome.results, competitors, model)

    def test_invalid_k(self, instance):
        _, products, tree, model = instance
        with pytest.raises(ConfigurationError):
            basic_probing(tree, products, model, k=0)

    def test_k_exceeding_t_returns_all(self, instance):
        _, products, tree, model = instance
        outcome = basic_probing(tree, products, model, k=10_000)
        assert len(outcome.results) == len(products)

    def test_results_sorted_by_cost(self, instance):
        _, products, tree, model = instance
        outcome = basic_probing(tree, products, model, k=20)
        costs = outcome.costs
        assert costs == sorted(costs)

    def test_report_populated(self, instance):
        _, products, tree, model = instance
        outcome = basic_probing(tree, products, model, k=1)
        assert outcome.report.algorithm == "probing/basic"
        assert outcome.report.elapsed_s > 0
        assert outcome.report.counters.node_accesses > 0
        assert outcome.report.counters.upgrade_calls == len(products)

    def test_empty_competitor_tree_requires_domain(self, instance):
        _, products, _, model = instance
        empty = RTree(2)
        with pytest.raises(ConfigurationError):
            basic_probing(empty, products, model, k=1)
        outcome = basic_probing(
            empty, products, model, k=2, domain_low=(0.0, 0.0)
        )
        assert all(r.cost == 0.0 for r in outcome.results)


class TestImprovedProbing:
    def test_matches_oracle(self, instance):
        competitors, products, tree, model = instance
        oracle = brute_force_topk(competitors, products, model, k=10)
        outcome = improved_probing(tree, products, model, k=10)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )
        verify_results(outcome.results, competitors, model)

    def test_matches_basic_probing_costs(self, instance):
        competitors, products, tree, model = instance
        basic = basic_probing(tree, products, model, k=15)
        improved = improved_probing(tree, products, model, k=15)
        np.testing.assert_allclose(basic.costs, improved.costs)

    def test_scans_fewer_points_than_basic(self, instance):
        _, products, tree, model = instance
        basic = basic_probing(tree, products, model, k=1)
        improved = improved_probing(tree, products, model, k=1)
        assert (
            improved.report.counters.points_scanned
            < basic.report.counters.points_scanned
        )

    def test_empty_competitor_tree(self, instance):
        _, products, _, model = instance
        outcome = improved_probing(RTree(2), products, model, k=3)
        assert all(r.cost == 0.0 for r in outcome.results)
        assert all(r.already_competitive for r in outcome.results)

    def test_invalid_k(self, instance):
        _, products, tree, model = instance
        with pytest.raises(ConfigurationError):
            improved_probing(tree, products, model, k=-1)

    def test_3d_instance(self):
        competitors, products = make_mixed_instance(seed=77, dims=3)
        tree = RTree.bulk_load(competitors)
        model = paper_cost_model(3)
        oracle = brute_force_topk(competitors, products, model, k=5)
        outcome = improved_probing(tree, products, model, k=5)
        np.testing.assert_allclose(
            [r.cost for r in outcome.results], [r.cost for r in oracle]
        )


class TestBatchProbing:
    def test_matches_oracle(self, instance):
        competitors, products, tree, model = instance
        oracle = brute_force_topk(competitors, products, model, k=10)
        outcome = batch_probing(tree, products, model, k=10)
        np.testing.assert_allclose(
            outcome.costs, [r.cost for r in oracle]
        )
        verify_results(outcome.results, competitors, model)

    def test_matches_improved_probing_exactly(self, instance):
        _, products, tree, model = instance
        improved = improved_probing(tree, products, model, k=20)
        batch = batch_probing(tree, products, model, k=20)
        np.testing.assert_allclose(batch.costs, improved.costs)
        assert [r.record_id for r in batch.results] == [
            r.record_id for r in improved.results
        ]

    def test_empty_competitor_tree(self, instance):
        _, products, _, model = instance
        outcome = batch_probing(RTree(2), products, model, k=3)
        assert all(r.cost == 0.0 for r in outcome.results)

    def test_invalid_k(self, instance):
        _, products, tree, model = instance
        with pytest.raises(ConfigurationError):
            batch_probing(tree, products, model, k=0)

    def test_does_far_less_dominance_work(self, instance):
        _, products, tree, model = instance
        improved = improved_probing(tree, products, model, k=1)
        batch = batch_probing(tree, products, model, k=1)
        assert (
            batch.report.counters.dominance_tests
            < improved.report.counters.dominance_tests
        )

    def test_report_label(self, instance):
        _, products, tree, model = instance
        outcome = batch_probing(tree, products, model, k=1)
        assert outcome.report.algorithm == "probing/batch"

    def test_3d_agreement(self):
        competitors, products = make_mixed_instance(seed=88, dims=3)
        tree = RTree.bulk_load(competitors)
        model = paper_cost_model(3)
        improved = improved_probing(tree, products, model, k=8)
        batch = batch_probing(tree, products, model, k=8)
        np.testing.assert_allclose(batch.costs, improved.costs)
