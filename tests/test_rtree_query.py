"""R-tree query tests: range, point, and kNN against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.geometry.mbr import MBR
from repro.instrumentation import Counters
from repro.rtree.query import knn_query, point_query, range_query
from repro.rtree.tree import RTree

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=120)


def brute_range(points, box):
    return sorted(
        (tuple(p), i)
        for i, p in enumerate(points)
        if box.contains_point(p)
    )


class TestRangeQuery:
    def test_empty_tree(self):
        assert range_query(RTree(2), MBR((0, 0), (1, 1))) == []

    def test_finds_exactly_the_contained_points(self):
        pts = np.random.default_rng(2).random((400, 2))
        tree = RTree.bulk_load(pts)
        box = MBR((0.2, 0.2), (0.6, 0.7))
        assert sorted(range_query(tree, box)) == brute_range(pts, box)

    def test_counts_node_accesses(self):
        pts = np.random.default_rng(2).random((400, 2))
        tree = RTree.bulk_load(pts)
        stats = Counters()
        range_query(tree, MBR((0, 0), (1, 1)), stats)
        assert stats.node_accesses > 0
        assert stats.points_scanned == 400

    @given(point_lists, st.tuples(coord, coord), st.tuples(coord, coord))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, points, a, b):
        tree = RTree.bulk_load(points, max_entries=4)
        box = MBR(
            (min(a[0], b[0]), min(a[1], b[1])),
            (max(a[0], b[0]), max(a[1], b[1])),
        )
        assert sorted(range_query(tree, box)) == brute_range(points, box)


class TestPointQuery:
    def test_exact_hit(self):
        tree = RTree.bulk_load([(0.1, 0.2), (0.3, 0.4)], record_ids=[5, 6])
        assert point_query(tree, (0.3, 0.4)) == [6]

    def test_miss(self):
        tree = RTree.bulk_load([(0.1, 0.2)])
        assert point_query(tree, (0.9, 0.9)) == []

    def test_duplicates_all_returned(self):
        tree = RTree.bulk_load(
            [(0.5, 0.5), (0.5, 0.5), (0.1, 0.1)], record_ids=[1, 2, 3]
        )
        assert sorted(point_query(tree, (0.5, 0.5))) == [1, 2]


class TestKnnQuery:
    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            knn_query(RTree(2), (0, 0), 0)

    def test_empty_tree(self):
        assert knn_query(RTree(2), (0, 0), 3) == []

    def test_k_larger_than_tree(self):
        tree = RTree.bulk_load([(0, 0), (1, 1)])
        assert len(knn_query(tree, (0, 0), 10)) == 2

    def test_orders_by_distance(self):
        pts = np.random.default_rng(7).random((300, 2))
        tree = RTree.bulk_load(pts)
        q = (0.4, 0.4)
        result = knn_query(tree, q, 10)
        dists = [sum((a - b) ** 2 for a, b in zip(p, q)) for p, _ in result]
        assert dists == sorted(dists)

    @given(point_lists, st.tuples(coord, coord), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, points, q, k):
        tree = RTree.bulk_load(points, max_entries=4)
        result = knn_query(tree, q, k)

        def dist(p):
            return sum((a - b) ** 2 for a, b in zip(p, q))

        brute = sorted(dist(p) for p in points)[: min(k, len(points))]
        got = sorted(dist(p) for p, _ in result)
        assert np.allclose(got, brute)
