"""Tests for the k-skyband and dominance-count substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.instrumentation import Counters
from repro.skyline.bnl import bnl_skyline
from repro.skyline.skyband import dominance_counts, k_skyband

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.tuples(coord, coord), min_size=0, max_size=60)


def brute_counts(points):
    out = []
    for p in points:
        c = 0
        for q in points:
            if q != p and all(a <= b for a, b in zip(q, p)) and any(
                a < b for a, b in zip(q, p)
            ):
                c += 1
        out.append(c)
    return out


class TestDominanceCounts:
    def test_simple(self):
        pts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        assert dominance_counts(pts).tolist() == [0, 1, 2]

    def test_incomparable(self):
        pts = np.array([[0.1, 0.9], [0.9, 0.1]])
        assert dominance_counts(pts).tolist() == [0, 0]

    def test_duplicates_do_not_count(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert dominance_counts(pts).tolist() == [0, 0]

    def test_shape_check(self):
        with pytest.raises(ConfigurationError):
            dominance_counts(np.zeros(4))

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, points):
        unique = sorted(set(points))
        if not unique:
            return
        got = dominance_counts(np.array(unique)).tolist()
        assert got == brute_counts(unique)


class TestKSkyband:
    def test_k1_is_the_skyline(self):
        rng = np.random.default_rng(3)
        pts = [tuple(p) for p in rng.random((120, 2))]
        assert sorted(k_skyband(pts, 1)) == sorted(bnl_skyline(pts))

    def test_band_grows_with_k(self):
        rng = np.random.default_rng(4)
        pts = [tuple(p) for p in rng.random((150, 2))]
        sizes = [len(k_skyband(pts, k)) for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_large_k_returns_everything(self):
        pts = [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)]
        assert sorted(k_skyband(pts, 10)) == sorted(pts)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            k_skyband([(0.0, 0.0)], 0)

    def test_empty(self):
        assert k_skyband([], 2) == []

    def test_counts_instrumented(self):
        stats = Counters()
        k_skyband([(0.1, 0.2), (0.3, 0.4), (0.2, 0.1)], 2, stats)
        assert stats.dominance_tests > 0

    @given(point_lists, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_matches_definition(self, points, k):
        unique = sorted(set(points))
        counts = brute_counts(unique)
        expected = sorted(
            p for p, c in zip(unique, counts) if c < k
        )
        assert sorted(k_skyband(points, k)) == expected
