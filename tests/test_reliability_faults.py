"""Unit tests for the reliability primitives: fault injection, retry
backoff, and the kernel/index guards."""

import random
import threading
import time

import pytest

from repro.exceptions import (
    ConfigurationError,
    InjectedFaultError,
    KernelDivergenceError,
    TransientError,
)
from repro.kernels.switch import kernels_enabled, set_kernels_enabled
from repro.reliability import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    IndexGuard,
    KernelGuard,
    RetryPolicy,
    active_injector,
    divergence,
    inject_faults,
    install,
    maybe_corrupt,
    maybe_inject,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Chaos machinery is process-global; never leak it across tests."""
    yield
    uninstall()
    set_kernels_enabled(True)


class TestFaultPlan:
    def test_iterable_points_normalize_to_error_specs(self):
        plan = FaultPlan(seed=1, rate=0.25, points=("rtree.query",))
        specs = plan.specs()
        assert specs["rtree.query"].rate == 0.25
        assert specs["rtree.query"].kind == "error"

    def test_mapping_points_pass_through(self):
        spec = FaultSpec(rate=1.0, kind="latency", latency_s=0.001)
        plan = FaultPlan(points={"serve.cache": spec})
        assert plan.specs() == {"serve.cache": spec}

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown injection"):
            FaultPlan(points=("serve.typo",)).specs()

    def test_non_spec_value_rejected(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultPlan(points={"serve.cache": 0.5}).specs()

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultSpec(rate=1.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultSpec(kind="explode")

    def test_every_documented_point_is_armable(self):
        plan = FaultPlan(rate=0.0, points=tuple(sorted(INJECTION_POINTS)))
        assert set(plan.specs()) == INJECTION_POINTS


class TestFaultInjector:
    def test_rate_one_always_fires(self):
        injector = FaultInjector(
            FaultPlan(seed=3, rate=1.0, points=("rtree.query",))
        )
        for _ in range(5):
            with pytest.raises(InjectedFaultError):
                injector.on_reach("rtree.query")
        assert injector.stats()["rtree.query"] == {
            "reached": 5,
            "fired": 5,
        }

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(
            FaultPlan(seed=3, rate=0.0, points=("rtree.query",))
        )
        for _ in range(50):
            injector.on_reach("rtree.query")
        assert injector.fired("rtree.query") == 0
        assert injector.stats()["rtree.query"]["reached"] == 50

    def test_unarmed_point_is_inert(self):
        injector = FaultInjector(
            FaultPlan(seed=3, rate=1.0, points=("serve.cache",))
        )
        injector.on_reach("rtree.query")  # must not raise

    def test_same_seed_same_fire_sequence(self):
        def run(seed):
            injector = FaultInjector(
                FaultPlan(seed=seed, rate=0.3, points=("rtree.query",))
            )
            fired = []
            for _ in range(200):
                try:
                    injector.on_reach("rtree.query")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        # The seeded draw matches the reference PRNG exactly.
        rng = random.Random(7)
        assert run(7) == [rng.random() < 0.3 for _ in range(200)]

    def test_max_fires_caps_the_damage(self):
        spec = FaultSpec(rate=1.0, max_fires=2)
        injector = FaultInjector(FaultPlan(points={"rtree.query": spec}))
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.on_reach("rtree.query")
        injector.on_reach("rtree.query")  # cap reached: inert
        assert injector.fired("rtree.query") == 2

    def test_latency_kind_sleeps_instead_of_raising(self):
        spec = FaultSpec(rate=1.0, kind="latency", latency_s=0.01)
        injector = FaultInjector(FaultPlan(points={"serve.cache": spec}))
        start = time.perf_counter()
        injector.on_reach("serve.cache")
        assert time.perf_counter() - start >= 0.009
        assert injector.fired("serve.cache") == 1

    def test_custom_error_type(self):
        spec = FaultSpec(rate=1.0, error_type=TransientError)
        injector = FaultInjector(FaultPlan(points={"serve.handler": spec}))
        with pytest.raises(TransientError):
            injector.on_reach("serve.handler")

    def test_corrupt_kind_mutates_results_only(self):
        spec = FaultSpec(rate=1.0, kind="corrupt")
        injector = FaultInjector(
            FaultPlan(points={"kernels.dominance": spec})
        )
        injector.on_reach("kernels.dominance")  # inert at inject sites
        assert injector.fired("kernels.dominance") == 0
        assert (
            injector.on_result("kernels.dominance", True, lambda v: not v)
            is False
        )

    def test_error_kind_never_corrupts(self):
        injector = FaultInjector(
            FaultPlan(rate=1.0, points=("kernels.dominance",))
        )
        assert (
            injector.on_result("kernels.dominance", True, lambda v: not v)
            is True
        )


class TestInstallation:
    def test_module_helpers_are_noops_when_uninstalled(self):
        assert active_injector() is None
        maybe_inject("rtree.query")
        assert maybe_corrupt("kernels.dominance", 42, lambda v: -v) == 42

    def test_context_manager_installs_and_removes(self):
        plan = FaultPlan(rate=1.0, points=("rtree.query",))
        with inject_faults(plan) as injector:
            assert active_injector() is injector
            with pytest.raises(InjectedFaultError):
                maybe_inject("rtree.query")
        assert active_injector() is None

    def test_double_install_rejected(self):
        install(FaultPlan())
        try:
            with pytest.raises(ConfigurationError, match="already"):
                install(FaultPlan())
        finally:
            uninstall()

    def test_uninstall_is_idempotent(self):
        uninstall()
        uninstall()

    def test_context_manager_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with inject_faults(FaultPlan()):
                raise RuntimeError("boom")
        assert active_injector() is None


class TestRetryPolicy:
    def test_delays_double_up_to_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.001, max_delay_s=0.003, jitter=0.0
        )
        assert policy.delay_s(1) == pytest.approx(0.001)
        assert policy.delay_s(2) == pytest.approx(0.002)
        assert policy.delay_s(3) == pytest.approx(0.003)
        assert policy.delay_s(4) == pytest.approx(0.003)  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=0.001, jitter=0.5)
        rng = random.Random(5)
        for attempt in (1, 2, 3):
            base = min(
                policy.max_delay_s, policy.base_delay_s * 2 ** (attempt - 1)
            )
            for _ in range(50):
                d = policy.delay_s(attempt, rng=rng)
                assert base <= d <= base * 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)


class TestKernelGuard:
    def test_sample_rate_one_checks_everything(self):
        guard = KernelGuard(sample_rate=1.0)
        assert all(guard.should_check() for _ in range(10))
        assert guard.checks == 10

    def test_sample_rate_zero_checks_nothing(self):
        guard = KernelGuard(sample_rate=0.0)
        assert not any(guard.should_check() for _ in range(10))

    def test_costs_match_tolerance_and_nan(self):
        guard = KernelGuard(tolerance=1e-9)
        assert guard.costs_match(1.0, 1.0 + 1e-10)
        assert not guard.costs_match(1.0, 1.0 + 1e-6)
        assert not guard.costs_match(float("nan"), 1.0)

    def test_first_divergence_quarantines_and_disables_kernels(self):
        guard = KernelGuard(sample_rate=1.0)
        assert kernels_enabled()
        triggered = guard.record_divergence(
            divergence("product", [(1, 2.0)], [(1, 3.0)])
        )
        assert triggered and guard.quarantined
        assert not kernels_enabled()
        assert not guard.should_check()  # no self-comparisons after

    def test_quarantine_threshold(self):
        guard = KernelGuard(sample_rate=1.0, quarantine_after=2)
        err = divergence("topk", [], [(0, 1.0)])
        assert not guard.record_divergence(err)
        assert kernels_enabled()
        assert guard.record_divergence(err)
        assert guard.quarantined and not kernels_enabled()

    def test_reset_lifts_quarantine(self):
        guard = KernelGuard(sample_rate=1.0)
        guard.record_divergence(divergence("product", [], []))
        guard.reset()
        assert not guard.quarantined and kernels_enabled()
        assert guard.divergences == []

    def test_divergence_error_is_typed_and_descriptive(self):
        err = divergence("topk", [(4, 1.5)], [(9, 1.25)])
        assert isinstance(err, KernelDivergenceError)
        assert "topk" in str(err) and "(9, 1.25)" in str(err)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelGuard(sample_rate=1.5)
        with pytest.raises(ValueError):
            KernelGuard(quarantine_after=0)


class TestIndexGuard:
    def test_checks_every_nth_mutation(self):
        guard = IndexGuard(every=3)
        due = [guard.should_check() for _ in range(9)]
        assert due == [False, False, True] * 3
        assert guard.stats() == {
            "every": 3,
            "mutations": 9,
            "checks": 3,
            "failures": 0,
        }

    def test_zero_disables(self):
        guard = IndexGuard(every=0)
        assert not any(guard.should_check() for _ in range(10))

    def test_thread_safety_of_the_mutation_count(self):
        guard = IndexGuard(every=5)
        hits = []

        def worker():
            for _ in range(100):
                if guard.should_check():
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert guard.mutations == 400
        assert len(hits) == 400 // 5
