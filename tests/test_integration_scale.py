"""Moderate-scale integration tests (marked slow).

The unit suite fuzzes small instances; these runs exercise the realistic
regime — tens of thousands of competitors, thousands of products, bulk
loaded trees — and cross-check the join against the amortized batch
probing baseline (itself unit-verified against improved probing and the
brute-force oracle on small instances).
"""

import numpy as np
import pytest

from repro.core.join import JoinUpgrader
from repro.core.probing import batch_probing
from repro.core.verify import verify_results
from repro.costs.model import paper_cost_model
from repro.data.generators import paper_workload
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

pytestmark = pytest.mark.slow

SETTINGS = [
    ("independent", 20_000, 2_000, 3),
    ("anti_correlated", 20_000, 2_000, 2),
    ("correlated", 20_000, 2_000, 3),
]


@pytest.mark.parametrize(
    "distribution,p_size,t_size,dims",
    SETTINGS,
    ids=[s[0] for s in SETTINGS],
)
def test_join_matches_batch_probing_at_scale(
    distribution, p_size, t_size, dims
):
    competitors, products = paper_workload(
        distribution, p_size, t_size, dims, seed=2026
    )
    model = paper_cost_model(dims)
    tree_p = RTree.bulk_load(competitors)
    tree_t = RTree.bulk_load(products)
    validate_rtree(tree_p, check_fill=False)
    validate_rtree(tree_t, check_fill=False)

    reference = batch_probing(tree_p, products, model, k=25)
    verify_results(reference.results, competitors, model)

    for bound in ("nlb", "clb", "alb", "max"):
        outcome = JoinUpgrader(tree_p, tree_t, model, bound=bound).run(25)
        np.testing.assert_allclose(
            outcome.costs, reference.costs, rtol=1e-9
        ), bound
        assert outcome.costs == sorted(outcome.costs)


def test_mixed_overlap_layout_at_scale():
    """T overlapping P's domain: zero-cost products, ties, partial bounds."""
    rng = np.random.default_rng(31)
    competitors = rng.random((30_000, 3))
    products = rng.random((3_000, 3)) * 1.4
    model = paper_cost_model(3)
    tree_p = RTree.bulk_load(competitors)
    tree_t = RTree.bulk_load(products)
    reference = batch_probing(tree_p, products, model, k=50)
    outcome = JoinUpgrader(tree_p, tree_t, model, bound="clb").run(50)
    np.testing.assert_allclose(outcome.costs, reference.costs, rtol=1e-9)
    verify_results(outcome.results, competitors, model)
    # The undominated fraction must surface first at cost zero.
    assert outcome.results[0].cost == 0.0
