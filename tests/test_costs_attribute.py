"""Tests for the attribute cost functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.costs.attribute import (
    ExponentialCost,
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    ReciprocalCost,
)
from repro.exceptions import CostFunctionError

positive_values = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

ALL_COSTS = [
    ReciprocalCost(),
    ReciprocalCost(scale=3.0, offset=0.5),
    LinearCost(intercept=10.0, slope=2.0),
    PowerCost(exponent=1.5),
    ExponentialCost(rate=0.7),
    PiecewiseLinearCost([(0.0, 5.0), (1.0, 2.0), (10.0, 0.0)]),
]


@pytest.mark.parametrize("cost", ALL_COSTS, ids=lambda c: c.describe())
class TestAllAttributeCosts:
    @given(a=positive_values, b=positive_values)
    def test_non_increasing(self, cost, a, b):
        lo, hi = min(a, b), max(a, b)
        assert cost(lo) >= cost(hi) - 1e-12

    @given(v=positive_values)
    def test_vector_agrees_with_scalar(self, cost, v):
        vec = cost.vector(np.array([v]))
        assert vec[0] == pytest.approx(cost(v), rel=1e-12, abs=1e-12)

    def test_vector_shape(self, cost):
        values = np.linspace(0.1, 5.0, 17)
        assert cost.vector(values).shape == (17,)

    def test_describe_is_string(self, cost):
        assert isinstance(cost.describe(), str) and cost.describe()


class TestReciprocalCost:
    def test_paper_form(self):
        f = ReciprocalCost(offset=1e-3)
        assert f(0.999) == pytest.approx(1.0)

    def test_rejects_nonpositive_offset(self):
        with pytest.raises(CostFunctionError):
            ReciprocalCost(offset=0.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(CostFunctionError):
            ReciprocalCost(scale=-1.0)

    def test_undefined_below_negative_offset(self):
        f = ReciprocalCost(offset=0.5)
        with pytest.raises(CostFunctionError):
            f(-0.5)

    def test_vector_undefined_below_negative_offset(self):
        f = ReciprocalCost(offset=0.5)
        with pytest.raises(CostFunctionError):
            f.vector(np.array([-0.6]))


class TestLinearCost:
    def test_rejects_negative_slope(self):
        with pytest.raises(CostFunctionError):
            LinearCost(slope=-1.0)

    def test_handles_negative_values(self):
        f = LinearCost(intercept=0.0, slope=1.0)
        assert f(-150.0) == 150.0


class TestPowerCost:
    def test_parameter_validation(self):
        with pytest.raises(CostFunctionError):
            PowerCost(exponent=0.0)
        with pytest.raises(CostFunctionError):
            PowerCost(offset=-1.0)
        with pytest.raises(CostFunctionError):
            PowerCost(scale=0.0)

    def test_undefined_at_negative_base(self):
        with pytest.raises(CostFunctionError):
            PowerCost(offset=0.1)(-0.2)


class TestExponentialCost:
    def test_parameter_validation(self):
        with pytest.raises(CostFunctionError):
            ExponentialCost(rate=0.0)
        with pytest.raises(CostFunctionError):
            ExponentialCost(scale=0.0)

    def test_value(self):
        f = ExponentialCost(scale=2.0, rate=1.0)
        assert f(0.0) == pytest.approx(2.0)


class TestPiecewiseLinearCost:
    def test_interpolation(self):
        f = PiecewiseLinearCost([(0.0, 10.0), (2.0, 0.0)])
        assert f(1.0) == pytest.approx(5.0)

    def test_clamps_outside_range(self):
        f = PiecewiseLinearCost([(1.0, 5.0), (2.0, 3.0)])
        assert f(0.0) == 5.0
        assert f(9.0) == 3.0

    def test_needs_two_breakpoints(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([(0.0, 1.0)])

    def test_rejects_non_increasing_x(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([(0.0, 1.0), (0.0, 0.5)])

    def test_rejects_increasing_cost(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([(0.0, 1.0), (1.0, 2.0)])

    def test_binary_search_many_segments(self):
        pts = [(float(i), float(20 - i)) for i in range(21)]
        f = PiecewiseLinearCost(pts)
        assert f(13.5) == pytest.approx(6.5)
