"""Tests for the single-set (one-catalog) upgrading variant (§VI)."""

import numpy as np
import pytest

from repro.core.single_set import single_set_top_k, split_catalog
from repro.core.verify import brute_force_topk, verify_results
from repro.costs.model import paper_cost_model
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.geometry.point import dominates
from repro.skyline.vectorized import numpy_skyline


@pytest.fixture()
def catalog(rng):
    return np.random.default_rng(33).random((150, 2)) * np.array([1.0, 2.0])


class TestSplitCatalog:
    def test_partition_is_complete(self, catalog):
        skyline_rows, candidate_rows, ids = split_catalog(catalog)
        assert len(skyline_rows) + len(candidate_rows) == len(catalog)
        assert len(ids) == len(candidate_rows)
        np.testing.assert_array_equal(catalog[ids], candidate_rows)

    def test_skyline_rows_are_the_skyline(self, catalog):
        skyline_rows, _, _ = split_catalog(catalog)
        expected = numpy_skyline(catalog)
        assert sorted(map(tuple, skyline_rows)) == sorted(expected)

    def test_candidates_are_dominated(self, catalog):
        skyline_rows, candidate_rows, _ = split_catalog(catalog)
        for c in candidate_rows:
            assert any(dominates(tuple(s), tuple(c)) for s in skyline_rows)

    def test_empty_catalog_rejected(self):
        with pytest.raises(EmptyDatasetError):
            split_catalog(np.zeros((0, 2)))


class TestSingleSetTopK:
    def test_record_ids_refer_to_catalog_rows(self, catalog):
        outcome = single_set_top_k(catalog, k=5)
        for r in outcome.results:
            np.testing.assert_array_equal(catalog[r.record_id], r.original)

    def test_upgrades_escape_the_whole_catalog(self, catalog):
        """Escaping the skyline must imply escaping every catalog member
        other than the product itself."""
        outcome = single_set_top_k(catalog, k=5)
        model = paper_cost_model(2)
        for r in outcome.results:
            others = np.delete(catalog, r.record_id, axis=0)
            verify_results([r], others, model)

    def test_join_and_probing_agree(self, catalog):
        join = single_set_top_k(catalog, k=6, method="join")
        probing = single_set_top_k(catalog, k=6, method="probing")
        assert join.costs == pytest.approx(probing.costs)

    def test_matches_two_set_oracle(self, catalog):
        skyline_rows, candidate_rows, ids = split_catalog(catalog)
        model = paper_cost_model(2)
        oracle = brute_force_topk(skyline_rows, candidate_rows, model, k=4)
        outcome = single_set_top_k(catalog, k=4, cost_model=model)
        assert outcome.costs == pytest.approx([r.cost for r in oracle])
        assert [r.record_id for r in outcome.results] == [
            int(ids[r.record_id]) for r in oracle
        ]

    def test_all_skyline_catalog_returns_empty(self):
        # A pure antichain: nothing to upgrade.
        catalog = [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1)]
        outcome = single_set_top_k(catalog, k=3)
        assert len(outcome.results) == 0

    def test_invalid_args(self, catalog):
        with pytest.raises(ConfigurationError):
            single_set_top_k(catalog, k=0)
        with pytest.raises(ConfigurationError):
            single_set_top_k(catalog, method="teleport")

    def test_algorithm_label(self, catalog):
        outcome = single_set_top_k(catalog, k=1, bound="alb")
        assert outcome.report.algorithm == "single-set/join[alb]"

    def test_3d_catalog(self):
        catalog = np.random.default_rng(44).random((120, 3))
        join = single_set_top_k(catalog, k=4, method="join")
        probing = single_set_top_k(catalog, k=4, method="probing")
        assert join.costs == pytest.approx(probing.costs)
        assert all(c > 0 for c in join.costs)
