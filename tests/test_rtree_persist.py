"""Tests for R-tree persistence."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import RTreeError
from repro.rtree.persist import load_rtree, save_rtree
from repro.rtree.query import range_query
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree
from repro.geometry.mbr import MBR

coord = st.floats(
    min_value=0, max_value=1, allow_nan=False, allow_infinity=False
)


class TestRoundTrip:
    def test_bulk_loaded_tree(self, tmp_path):
        pts = np.random.default_rng(1).random((300, 3))
        tree = RTree.bulk_load(pts, max_entries=16)
        path = tmp_path / "tree.jsonl"
        save_rtree(tree, path)
        loaded = load_rtree(path)
        assert len(loaded) == len(tree)
        assert loaded.dims == 3
        assert loaded.max_entries == 16
        validate_rtree(loaded, check_fill=False)
        assert sorted(loaded.iter_points()) == sorted(tree.iter_points())

    def test_dynamic_tree(self, tmp_path):
        tree = RTree(2, max_entries=6, split="linear")
        rng = np.random.default_rng(2)
        for i, p in enumerate(rng.random((120, 2))):
            tree.insert(tuple(p), i)
        path = tmp_path / "tree.jsonl"
        save_rtree(tree, path)
        loaded = load_rtree(path)
        assert loaded.split_strategy == "linear"
        assert sorted(loaded.iter_points()) == sorted(tree.iter_points())

    def test_empty_tree(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_rtree(RTree(4), path)
        loaded = load_rtree(path)
        assert loaded.is_empty()
        assert loaded.dims == 4

    def test_loaded_tree_answers_queries(self, tmp_path):
        pts = np.random.default_rng(3).random((200, 2))
        tree = RTree.bulk_load(pts)
        path = tmp_path / "tree.jsonl"
        save_rtree(tree, path)
        loaded = load_rtree(path)
        box = MBR((0.2, 0.2), (0.7, 0.7))
        assert sorted(range_query(loaded, box)) == sorted(
            range_query(tree, box)
        )

    def test_loaded_tree_accepts_inserts(self, tmp_path):
        tree = RTree.bulk_load([(0.1, 0.1), (0.9, 0.9)])
        path = tmp_path / "t.jsonl"
        save_rtree(tree, path)
        loaded = load_rtree(path)
        loaded.insert((0.5, 0.5), 99)
        assert len(loaded) == 3
        validate_rtree(loaded, check_fill=False)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, points):
        import tempfile
        from pathlib import Path

        tree = RTree.bulk_load(points, max_entries=4)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "tree.jsonl"
            save_rtree(tree, path)
            loaded = load_rtree(path)
        assert sorted(loaded.iter_points()) == sorted(tree.iter_points())


class TestCorruptionHandling:
    def _saved(self, tmp_path):
        tree = RTree.bulk_load(
            np.random.default_rng(5).random((50, 2)), max_entries=8
        )
        path = tmp_path / "tree.jsonl"
        save_rtree(tree, path)
        return path

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(RTreeError, match="empty"):
            load_rtree(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(json.dumps({"magic": "nope"}) + "\n")
        with pytest.raises(RTreeError, match="not a skyup"):
            load_rtree(path)

    def test_bad_header_json(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("{{{\n")
        with pytest.raises(RTreeError, match="bad header"):
            load_rtree(path)

    def test_truncated_stream(self, tmp_path):
        path = self._saved(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(RTreeError):
            load_rtree(path)

    def test_size_mismatch(self, tmp_path):
        path = self._saved(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["size"] += 5
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(RTreeError, match="declares"):
            load_rtree(path)

    def test_wrong_version(self, tmp_path):
        path = self._saved(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(RTreeError, match="version"):
            load_rtree(path)

    def test_corrupt_node_record_names_the_line(self, tmp_path):
        path = self._saved(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # chop a node record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RTreeError, match="line 3"):
            load_rtree(path)

    def test_leaf_with_wrong_dims_names_the_line(self, tmp_path):
        path = self._saved(tmp_path)
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines[1:], start=2):
            record = json.loads(line)
            if record.get("level") == 0:
                record["points"][0] = record["points"][0] + [0.5]
                lines[i - 1] = json.dumps(record)
                break
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RTreeError, match=r"line \d+.*dim"):
            load_rtree(path)


class TestHostileBytes:
    """Bit-flipped and truncated files must load cleanly or raise
    :class:`RTreeError` — never a raw ``JSONDecodeError``/``KeyError``/
    ``TypeError`` from decoder internals."""

    def _saved_bytes(self, tmp_path):
        tree = RTree.bulk_load(
            np.random.default_rng(9).random((80, 3)), max_entries=8
        )
        path = tmp_path / "tree.jsonl"
        save_rtree(tree, path)
        return path, path.read_bytes()

    def test_single_bit_flips(self, tmp_path):
        path, raw = self._saved_bytes(tmp_path)
        rng = np.random.default_rng(17)
        positions = rng.integers(0, len(raw), size=120)
        bits = rng.integers(0, 8, size=120)
        for pos, bit in zip(positions, bits):
            mutated = bytearray(raw)
            mutated[pos] ^= 1 << int(bit)
            path.write_bytes(bytes(mutated))
            try:
                loaded = load_rtree(path)
            except RTreeError:
                continue
            except UnicodeDecodeError:
                # A flip into an invalid UTF-8 byte fails at the io layer,
                # before any record is parsed; acceptable.
                continue
            # Flip landed in a coordinate digit or some other spot that
            # still decodes: the loader must return a coherent tree.
            validate_rtree(loaded, check_fill=False)

    def test_truncation_at_every_sampled_length(self, tmp_path):
        path, raw = self._saved_bytes(tmp_path)
        rng = np.random.default_rng(23)
        lengths = sorted(set(rng.integers(0, len(raw), size=60).tolist()))
        for length in lengths:
            path.write_bytes(raw[:length])
            try:
                loaded = load_rtree(path)
            except RTreeError:
                continue
            validate_rtree(loaded, check_fill=False)

    def test_truncation_mid_stream_reports_rtree_error(self, tmp_path):
        path, raw = self._saved_bytes(tmp_path)
        lines = raw.decode().splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(RTreeError):
            load_rtree(path)

    def test_injected_load_fault(self, tmp_path):
        from repro.exceptions import InjectedFaultError
        from repro.reliability.faults import FaultPlan, inject_faults

        path, _raw = self._saved_bytes(tmp_path)
        plan = FaultPlan(seed=1, rate=1.0, points=("persist.load",))
        with inject_faults(plan) as injector:
            with pytest.raises(InjectedFaultError):
                load_rtree(path)
            assert injector.fired("persist.load") == 1
        load_rtree(path)  # chaos off: loads fine
