"""Tests for the skyup command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.io import load_points_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "skyup" in capsys.readouterr().out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "pts.csv"
        code = main(
            [
                "generate",
                str(out),
                "--distribution",
                "anti_correlated",
                "--n",
                "50",
                "--dims",
                "3",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        points, _ = load_points_csv(out)
        assert points.shape == (50, 3)
        assert "anti_correlated" in capsys.readouterr().out


class TestRun:
    @pytest.fixture()
    def csv_pair(self, tmp_path):
        p_csv = tmp_path / "p.csv"
        t_csv = tmp_path / "t.csv"
        main(["generate", str(p_csv), "--n", "120", "--dims", "2",
              "--seed", "3"])
        main(["generate", str(t_csv), "--n", "15", "--dims", "2",
              "--seed", "4", "--low", "1.0", "--high", "2.0"])
        return p_csv, t_csv

    @pytest.mark.parametrize("method", ["auto", "join", "probing", "basic-probing"])
    def test_run_methods(self, csv_pair, capsys, method):
        p_csv, t_csv = csv_pair
        code = main(
            [
                "run",
                "--competitors",
                str(p_csv),
                "--products",
                str(t_csv),
                "--k",
                "3",
                "--method",
                method,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert lines[0].startswith("rank,")
        assert len(lines) == 4  # header + k rows

    def test_run_with_counters(self, csv_pair, capsys):
        p_csv, t_csv = csv_pair
        code = main(
            [
                "run",
                "--competitors",
                str(p_csv),
                "--products",
                str(t_csv),
                "--show-counters",
            ]
        )
        assert code == 0
        assert "# node_accesses=" in capsys.readouterr().out

    def test_run_methods_agree(self, csv_pair, capsys):
        p_csv, t_csv = csv_pair

        def costs_for(method):
            main(
                [
                    "run",
                    "--competitors", str(p_csv),
                    "--products", str(t_csv),
                    "--k", "3",
                    "--method", method,
                ]
            )
            out = capsys.readouterr().out
            return [
                float(line.split(",")[2])
                for line in out.splitlines()
                if line and line[0].isdigit()
            ]

        assert costs_for("join") == pytest.approx(costs_for("probing"))


class TestCatalog:
    def test_catalog_command(self, tmp_path, capsys):
        path = tmp_path / "catalog.csv"
        main(["generate", str(path), "--n", "150", "--dims", "2",
              "--seed", "8"])
        capsys.readouterr()
        code = main(["catalog", "--catalog", str(path), "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "competitive" in out
        rows = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert len(rows) == 3

    def test_catalog_methods_agree(self, tmp_path, capsys):
        path = tmp_path / "catalog.csv"
        main(["generate", str(path), "--n", "120", "--dims", "2",
              "--seed", "9"])
        capsys.readouterr()

        def costs_for(method):
            main(["catalog", "--catalog", str(path), "--k", "2",
                  "--method", method])
            out = capsys.readouterr().out
            return [
                float(l.split(",")[2])
                for l in out.splitlines()
                if l and l[0].isdigit()
            ]

        assert costs_for("join") == pytest.approx(costs_for("probing"))


class TestFigure:
    def test_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        for fid in ["fig4", "fig6a", "fig10"]:
            assert fid in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_quick_run(self, capsys):
        code = main(["figure", "fig9c", "--scale", "2000", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9c" in out
        assert "join-alb" in out


class TestServeBench:
    def test_reports_speedup_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "serve-bench",
                "--competitors", "250",
                "--products", "120",
                "--requests", "120",
                "--hot-pool", "16",
                "--topk-every", "20",
                "--save-json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "speedup (cached/cold):" in text
        assert "cold" in text and "cached" in text
        import json

        report = json.loads(out.read_text())
        assert report["speedup"] > 1.0
        assert report["cached"]["cache_hits"] > 0
        assert report["cold"]["cache_hits"] == 0
        assert report["workload"]["requests"] == 120
        assert "timings_s" in report["cold"]

    def test_rejects_nonpositive_sizes(self, capsys):
        code = main(["serve-bench", "--requests", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --requests 0" in err
        assert "must be >= 1" in err

    def test_sharded_run_reports_per_process_health(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_serve_sharded.json"
        code = main(
            [
                "serve-bench",
                "--competitors", "200",
                "--products", "80",
                "--requests", "60",
                "--hot-pool", "16",
                "--topk-every", "20",
                "--processes", "2",
                "--shards", "4",
                "--save-json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "sharded: 2 processes x 4 shards" in text
        assert "proc 0:" in text and "proc 1:" in text
        import json

        report = json.loads(out.read_text())
        stats = report["sharded"]["shards"]
        assert stats["n_processes"] == 2
        assert stats["n_shards"] == 4
        owned = [p["shards"] for p in stats["per_process"]]
        assert sorted(s for shards in owned for s in shards) == [0, 1, 2, 3]
        for proc in stats["per_process"]:
            assert proc["crashes"] == 0
            assert proc["alive"] is True
        assert report["sharded"]["reliability"]["worker_respawns"] == 0
        assert report["workload"]["processes"] == 2

    def test_rejects_inconsistent_topology(self, capsys):
        code = main(["serve-bench", "--processes", "2", "--shards", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --shards 1" in err
        assert "--processes" in err
        code = main(["serve-bench", "--shards", "2"])
        assert code == 2
        assert "requires --processes" in capsys.readouterr().err

    def test_unknown_fault_point_suggests(self, capsys):
        code = main(["serve-bench", "--fault-points", "serve.cach"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown --fault-points 'serve.cach'" in err
        assert "did you mean 'serve.cache'?" in err


class TestBenchKernels:
    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernels.json"
        code = main(
            [
                "bench-kernels",
                "--competitors", "300",
                "--products", "60",
                "--dims", "2",
                "--repeats", "1",
                "--save-json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "scalar_s" in text and "kernel_s" in text
        assert "all cells agree" in text
        import json

        report = json.loads(out.read_text())
        assert report["all_agree"] is True
        names = [c["cell"] for c in report["cells"]]
        assert "probing_batch" in names
        assert any(n.startswith("join[") for n in names)

    @pytest.mark.parametrize(
        "flag", ["--competitors", "--products", "--dims", "--repeats"]
    )
    def test_rejects_nonpositive_sizes(self, capsys, flag):
        code = main(["bench-kernels", flag, "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert f"invalid {flag} 0" in err
        assert "must be >= 1" in err

    def test_rejects_unknown_bound(self, capsys):
        code = main(["bench-kernels", "--bound", "tight"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown bound 'tight'" in err and "clb" in err


class TestExplain:
    def test_text_tree(self, capsys):
        code = main(
            [
                "explain",
                "--n-competitors", "300",
                "--n-products", "120",
                "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "topk k=3" in out
        assert "(chosen)" in out
        assert "est=" in out and "act=" in out
        # All five physical alternatives appear as candidates.
        for label in ["join[nlb]", "join[clb]", "join[alb]", "probing",
                      "basic-probing"]:
            assert label in out

    def test_json_validates_against_schema(self, capsys):
        import json

        from repro.plan.explain import validate_explain_json

        code = main(
            [
                "explain",
                "--n-competitors", "300",
                "--n-products", "120",
                "--k", "3",
                "--format", "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        validate_explain_json(doc)

    def test_no_execute_estimates_only(self, capsys):
        code = main(
            [
                "explain",
                "--n-competitors", "300",
                "--n-products", "120",
                "--no-execute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "est=" in out
        assert "act=" not in out

    def test_forced_method_is_marked(self, capsys):
        code = main(
            [
                "explain",
                "--n-competitors", "300",
                "--n-products", "120",
                "--method", "probing",
                "--no-execute",
            ]
        )
        assert code == 0
        assert "(forced)" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "explain.json"
        code = main(
            [
                "explain",
                "--n-competitors", "300",
                "--n-products", "120",
                "--no-execute",
                "--format", "json",
                "--out", str(out),
            ]
        )
        assert code == 0
        import json

        json.loads(out.read_text())
        assert "explain written" in capsys.readouterr().out

    def test_rejects_half_a_csv_pair(self, tmp_path, capsys):
        code = main(["explain", "--competitors", str(tmp_path / "p.csv")])
        assert code == 2
        assert "both --competitors and --products" in (
            capsys.readouterr().err
        )

    def test_rejects_nonpositive_sizes(self, capsys):
        code = main(["explain", "--k", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --k 0" in err and "must be >= 1" in err


class TestBenchPlannerCLI:
    def test_rejects_bad_dims_list(self, capsys):
        code = main(["bench-planner", "--dims", "2,x"])
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_rejects_nonpositive_repeats(self, capsys):
        code = main(["bench-planner", "--repeats", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --repeats 0" in err and "must be >= 1" in err


class TestMethodFlags:
    def test_serve_bench_auto_reports_plans(self, capsys):
        code = main(
            [
                "serve-bench",
                "--competitors", "250",
                "--products", "120",
                "--requests", "60",
                "--hot-pool", "16",
                "--topk-every", "20",
                "--method", "auto",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plans:" in out

    def test_bench_kernels_auto_reports_chosen_plan(self, capsys):
        code = main(
            [
                "bench-kernels",
                "--competitors", "300",
                "--products", "60",
                "--repeats", "1",
                "--method", "auto",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan=" in out
        assert "end_to_end[auto]" in out

    def test_bench_kernels_rejects_unknown_method(self, capsys):
        # argparse enforces the choices list before our handler runs.
        with pytest.raises(SystemExit) as exc:
            main(["bench-kernels", "--method", "quantum"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
