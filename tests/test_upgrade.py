"""Tests for Algorithm 1 (single-product upgrade)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.types import UpgradeConfig
from repro.core.upgrade import _VECTOR_THRESHOLD, upgrade
from repro.costs.model import CostModel, paper_cost_model
from repro.costs.attribute import LinearCost
from repro.exceptions import (
    ConfigurationError,
    DimensionalityError,
    NotAnAntichainError,
)
from repro.geometry.point import dominates
from repro.skyline.bnl import bnl_skyline

coord = st.floats(
    min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
)


def dominator_skyline(points, product):
    dominators = [p for p in points if dominates(p, product)]
    return bnl_skyline(dominators)


class TestBasics:
    def test_empty_skyline_is_free(self, cost_model_2d):
        cost, upgraded = upgrade([], (1.0, 1.0), cost_model_2d)
        assert cost == 0.0
        assert upgraded == (1.0, 1.0)

    def test_single_dominator_single_dim_escape(self, cost_model_2d):
        # One dominator: cheapest escape beats it on one dimension.
        cost, upgraded = upgrade([(0.5, 0.5)], (1.0, 1.0), cost_model_2d)
        assert not dominates((0.5, 0.5), upgraded)
        # Exactly one coordinate changed (to 0.5 - eps).
        changed = [i for i in range(2) if upgraded[i] != 1.0]
        assert len(changed) == 1
        assert upgraded[changed[0]] == pytest.approx(0.5, abs=1e-6)
        expected = cost_model_2d.upgrade_cost((1.0, 1.0), upgraded)
        assert cost == pytest.approx(expected)

    def test_figure_1b_style_slotting(self, cost_model_2d):
        # Two dominators where slotting between them beats either
        # single-dimension jump (values tuned so the slot is cheapest).
        skyline = [(0.1, 0.8), (0.8, 0.1)]
        product = (0.9, 0.9)
        cost, upgraded = upgrade(skyline, product, cost_model_2d)
        for s in skyline:
            assert not dominates(s, upgraded)
        # The chosen point slots between the two skyline points.
        assert 0.1 < upgraded[0] <= 0.8 + 1e-9
        assert 0.1 - 1e-9 <= upgraded[1] < 0.8

    def test_cost_equals_model_delta(self, cost_model_3d):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 3)) * 0.5
        product = (1.5, 1.5, 1.5)
        skyline = dominator_skyline([tuple(p) for p in pts], product)
        cost, upgraded = upgrade(skyline, product, cost_model_3d)
        assert cost == pytest.approx(
            cost_model_3d.upgrade_cost(product, upgraded)
        )

    def test_dimension_mismatch(self, cost_model_2d):
        with pytest.raises(DimensionalityError):
            upgrade([(0.5, 0.5, 0.5)], (1.0, 1.0), cost_model_2d)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            UpgradeConfig(epsilon=0.0)


class TestValidation:
    def test_rejects_non_dominating_member(self, cost_model_2d):
        config = UpgradeConfig(validate=True)
        with pytest.raises(NotAnAntichainError):
            upgrade([(2.0, 2.0)], (1.0, 1.0), cost_model_2d, config)

    def test_rejects_dominated_member(self, cost_model_2d):
        config = UpgradeConfig(validate=True)
        with pytest.raises(NotAnAntichainError):
            upgrade(
                [(0.2, 0.2), (0.3, 0.3)], (1.0, 1.0), cost_model_2d, config
            )

    def test_accepts_proper_skyline(self, cost_model_2d):
        config = UpgradeConfig(validate=True)
        cost, upgraded = upgrade(
            [(0.2, 0.8), (0.8, 0.2)], (1.0, 1.0), cost_model_2d, config
        )
        assert cost > 0


class TestLemma1Property:
    """Lemma 1: the returned point escapes every skyline point."""

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=30),
        st.tuples(
            st.floats(min_value=1.01, max_value=2.0),
            st.floats(min_value=1.01, max_value=2.0),
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_2d(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = paper_cost_model(2)
        cost, upgraded = upgrade(skyline, product, model)
        for s in skyline:
            assert not dominates(s, upgraded)
        assert cost == pytest.approx(model.upgrade_cost(product, upgraded))

    @given(
        st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=25),
        st.tuples(
            st.floats(min_value=1.01, max_value=2.0),
            st.floats(min_value=1.01, max_value=2.0),
            st.floats(min_value=1.01, max_value=2.0),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_3d(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = paper_cost_model(3)
        cost, upgraded = upgrade(skyline, product, model)
        for s in skyline:
            assert not dominates(s, upgraded)

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=30),
        st.tuples(
            st.floats(min_value=1.01, max_value=2.0),
            st.floats(min_value=1.01, max_value=2.0),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_extended_mode_correct_and_never_worse(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = paper_cost_model(2)
        base_cost, _ = upgrade(skyline, product, model)
        ext_cost, ext_upgraded = upgrade(
            skyline, product, model, UpgradeConfig(extended=True)
        )
        assert ext_cost <= base_cost + 1e-12
        for s in skyline:
            assert not dominates(s, ext_upgraded)


class TestVectorizedPath:
    def _big_instance(self, dims, n):
        # A deterministic large antichain: a staircase in the first two
        # dimensions (one rises as the other falls), constant elsewhere.
        step = 0.5 / n
        skyline = []
        for i in range(n):
            point = [0.4] * dims
            point[0] = 0.05 + i * step
            point[1] = 0.55 - i * step
            skyline.append(tuple(point))
        product = tuple([1.8] * dims)
        return skyline, product

    def test_vector_path_matches_scalar_cost(self):
        skyline, product = self._big_instance(3, 400)
        assert len(skyline) >= _VECTOR_THRESHOLD // 2
        model = paper_cost_model(3)
        # Force both paths by toggling the vectorization probe.
        fast_cost, fast_up = upgrade(skyline, product, model)
        model_scalar = paper_cost_model(3)
        model_scalar._vector_ok = False
        slow_cost, slow_up = upgrade(skyline, product, model_scalar)
        assert fast_cost == pytest.approx(slow_cost, rel=1e-9)
        for s in skyline:
            assert not dominates(s, fast_up)

    def test_vector_path_extended_mode(self):
        skyline, product = self._big_instance(2, 300)
        model = paper_cost_model(2)
        fast_cost, _ = upgrade(
            skyline, product, model, UpgradeConfig(extended=True)
        )
        model._vector_ok = False
        slow_cost, _ = upgrade(
            skyline, product, model, UpgradeConfig(extended=True)
        )
        assert fast_cost == pytest.approx(slow_cost, rel=1e-9)

    def test_non_vectorizable_model_uses_scalar_path(self):
        class Plain(LinearCost):
            def vector(self, values):
                raise NotImplementedError

        skyline = [(i * 0.01, 1.0 - i * 0.01) for i in range(100)]
        model = CostModel([Plain(5.0, 1.0), Plain(5.0, 1.0)])
        cost, upgraded = upgrade(skyline, (1.5, 1.5), model)
        for s in skyline:
            assert not dominates(s, upgraded)
