"""Planner integration in the serving engine.

The engine's default method is now ``"auto"``: it profiles the catalog,
asks the planner for a physical plan, caches it per epoch, and feeds
observed runtimes back.  The invariants pinned here: auto answers are
bit-for-bit the legacy join answers (plan choice changes work, never
results), ``method="join"`` bypasses planning entirely, mutations drop
the cached plan, and the guarded/deadline paths survive a probing plan.
"""

import numpy as np
import pytest

from repro.core.session import MarketSession
from repro.reliability.guards import KernelGuard
from repro.serve import EngineConfig, TopKQuery, UpgradeEngine


def make_session(seed=11, n_p=200, n_t=50, dims=2):
    rng = np.random.default_rng(seed)
    return MarketSession.from_points(
        rng.random((n_p, dims)), 1.0 + rng.random((n_t, dims)),
        max_entries=8,
    )


def run_engine(config, k=7, seed=11):
    with UpgradeEngine(make_session(seed=seed), config) as engine:
        response = engine.query(TopKQuery(k=k))
        return response, engine.metrics()


class TestAutoEqualsJoin:
    @pytest.mark.parametrize("seed", [11, 40])
    def test_same_answers(self, seed):
        auto, _ = run_engine(
            EngineConfig(workers=0, method="auto"), seed=seed
        )
        join, _ = run_engine(
            EngineConfig(workers=0, method="join"), seed=seed
        )
        assert [r.record_id for r in auto.results] == [
            r.record_id for r in join.results
        ]
        assert [r.cost for r in auto.results] == pytest.approx(
            [r.cost for r in join.results]
        )

    def test_forced_probing_same_answers(self):
        probing, _ = run_engine(EngineConfig(workers=0, method="probing"))
        join, _ = run_engine(EngineConfig(workers=0, method="join"))
        assert [(r.record_id, pytest.approx(r.cost)) for r in
                probing.results] == [
            (r.record_id, pytest.approx(r.cost)) for r in join.results
        ]


class TestPlannerMetrics:
    def test_auto_reports_planner_section(self):
        _, metrics = run_engine(EngineConfig(workers=0, method="auto"))
        planner = metrics["planner"]
        assert planner is not None
        assert sum(planner["plans_chosen"].values()) >= 1
        assert planner["version"] >= 0

    def test_join_reports_no_planner(self):
        _, metrics = run_engine(EngineConfig(workers=0, method="join"))
        assert metrics["planner"] is None

    def test_probing_plan_is_forced(self):
        _, metrics = run_engine(EngineConfig(workers=0, method="probing"))
        chosen = metrics["planner"]["plans_chosen"]
        assert set(chosen) <= {"probing", "basic-probing"}


class TestPlanCache:
    def test_plan_survives_repeat_queries(self):
        session = make_session()
        with UpgradeEngine(
            session, EngineConfig(workers=0, method="auto", cache=False)
        ) as engine:
            engine.query(TopKQuery(k=3))
            engine.query(TopKQuery(k=5))
            planner = engine.metrics()["planner"]
            # One profiling pass serves both queries.
            assert sum(planner["plans_chosen"].values()) == 1

    def test_mutation_drops_cached_plan(self):
        session = make_session()
        with UpgradeEngine(
            session, EngineConfig(workers=0, method="auto", cache=False)
        ) as engine:
            engine.query(TopKQuery(k=3))
            engine.add_product([0.5, 0.5])
            engine.query(TopKQuery(k=3))
            planner = engine.metrics()["planner"]
            assert sum(planner["plans_chosen"].values()) == 2


class TestHardPaths:
    def test_expired_deadline_under_probing_yields_partial(self):
        with UpgradeEngine(
            make_session(),
            EngineConfig(workers=0, method="probing", cache=False),
        ) as engine:
            response = engine.query(TopKQuery(k=4, deadline_s=0.0))
            assert response.partial
            assert response.results == []

    def test_guarded_path_under_auto(self):
        config = EngineConfig(
            workers=0, method="auto",
            kernel_guard=KernelGuard(sample_rate=1.0),
        )
        session = make_session()
        with UpgradeEngine(session, config) as engine:
            response = engine.query(TopKQuery(k=5))
            assert [r.cost for r in response.results] == pytest.approx(
                session.top_k(5).costs
            )
            guard = engine.metrics()["reliability"]["kernel_guard"]
            assert guard["checks"] >= 1 and guard["divergences"] == 0

    def test_guarded_path_under_forced_probing(self):
        config = EngineConfig(
            workers=0, method="probing",
            kernel_guard=KernelGuard(sample_rate=1.0),
        )
        session = make_session()
        with UpgradeEngine(session, config) as engine:
            response = engine.query(TopKQuery(k=5))
            assert [r.cost for r in response.results] == pytest.approx(
                session.top_k(5).costs
            )
