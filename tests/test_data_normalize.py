"""Tests for orientation and min-max normalization."""

import numpy as np
import pytest

from repro.data.normalize import (
    Orientation,
    min_max_normalize,
    orient_minimize,
)
from repro.exceptions import ConfigurationError
from repro.geometry.point import dominates


class TestOrientMinimize:
    def test_negates_max_columns(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = orient_minimize(data, [Orientation.MIN, Orientation.MAX])
        np.testing.assert_array_equal(
            out, np.array([[1.0, -2.0], [3.0, -4.0]])
        )

    def test_preserves_dominance(self):
        # In raw terms: a is lighter AND has longer standby -> a dominates b.
        raw = np.array([[100.0, 200.0], [150.0, 150.0]])
        out = orient_minimize(raw, [Orientation.MIN, Orientation.MAX])
        assert dominates(tuple(out[0]), tuple(out[1]))

    def test_does_not_mutate_input(self):
        data = np.array([[1.0, 2.0]])
        orient_minimize(data, [Orientation.MIN, Orientation.MAX])
        np.testing.assert_array_equal(data, np.array([[1.0, 2.0]]))

    def test_arity_checked(self):
        with pytest.raises(ConfigurationError):
            orient_minimize(np.zeros((2, 3)), [Orientation.MIN])

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            orient_minimize(np.zeros(3), [Orientation.MIN] * 3)


class TestMinMaxNormalize:
    def test_unit_range(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        out = min_max_normalize(data)
        np.testing.assert_allclose(out.min(axis=0), [0.0, 0.0])
        np.testing.assert_allclose(out.max(axis=0), [1.0, 1.0])

    def test_custom_range(self):
        data = np.array([[0.0], [1.0]])
        out = min_max_normalize(data, low=2.0, high=4.0)
        np.testing.assert_allclose(out.ravel(), [2.0, 4.0])

    def test_constant_column_maps_to_low(self):
        data = np.array([[5.0, 1.0], [5.0, 2.0]])
        out = min_max_normalize(data)
        np.testing.assert_allclose(out[:, 0], [0.0, 0.0])

    def test_preserves_dominance(self):
        rng = np.random.default_rng(2)
        data = rng.random((50, 3)) * np.array([10, 100, 1000])
        out = min_max_normalize(data)
        for i in range(0, 50, 7):
            for j in range(0, 50, 11):
                a, b = tuple(data[i]), tuple(data[j])
                na, nb = tuple(out[i]), tuple(out[j])
                assert dominates(a, b) == dominates(na, nb)

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            min_max_normalize(np.zeros((2, 2)), low=1.0, high=1.0)

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            min_max_normalize(np.zeros(4))
