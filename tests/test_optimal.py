"""Tests settling the §VI optimality question for Algorithm 1.

Claims verified here (see :mod:`repro.core.optimal`):

1. in 2-d, verbatim Algorithm 1 is optimal (matches both the independent
   staircase sweep and the exhaustive grid), and the extended tail
   candidates coincide with existing option-A candidates (no change);
2. in 3-d, Algorithm 1 is suboptimal even with the extension — a concrete
   witness instance with an ~11% cost gap is pinned down.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.optimal import (
    optimal_upgrade_2d,
    optimal_upgrade_exhaustive,
)
from repro.core.types import UpgradeConfig
from repro.core.upgrade import upgrade
from repro.costs.attribute import LinearCost
from repro.costs.model import CostModel, paper_cost_model
from repro.exceptions import ConfigurationError, DimensionalityError
from repro.geometry.point import dominates
from repro.skyline.bnl import bnl_skyline

coord = st.floats(
    min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
)
EXTENDED = UpgradeConfig(extended=True)


def dominator_skyline(points, product):
    return bnl_skyline([p for p in points if dominates(p, product)])


class TestOptimal2d:
    def test_empty_skyline(self, cost_model_2d):
        assert optimal_upgrade_2d([], (1.0, 1.0), cost_model_2d) == (
            0.0,
            (1.0, 1.0),
        )

    def test_rejects_wrong_dims(self, cost_model_2d):
        with pytest.raises(DimensionalityError):
            optimal_upgrade_2d([], (1.0, 1.0, 1.0), cost_model_2d)
        with pytest.raises(DimensionalityError):
            optimal_upgrade_2d([(0.5, 0.5, 0.5)], (1.0, 1.0), cost_model_2d)

    def test_result_escapes_and_costs_check(self, cost_model_2d):
        skyline = [(0.1, 0.8), (0.5, 0.5), (0.8, 0.1)]
        cost, up = optimal_upgrade_2d(skyline, (1.0, 1.0), cost_model_2d)
        for s in skyline:
            assert not dominates(s, up)
        assert cost == pytest.approx(
            cost_model_2d.upgrade_cost((1.0, 1.0), up)
        )

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=15),
        st.tuples(
            st.floats(min_value=1.05, max_value=2.0),
            st.floats(min_value=1.05, max_value=2.0),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_exhaustive_grid(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = paper_cost_model(2)
        sweep_cost, _ = optimal_upgrade_2d(skyline, product, model)
        grid_cost, _ = optimal_upgrade_exhaustive(skyline, product, model)
        assert sweep_cost == pytest.approx(grid_cost, abs=1e-9)

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=15),
        st.tuples(
            st.floats(min_value=1.05, max_value=2.0),
            st.floats(min_value=1.05, max_value=2.0),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_verbatim_algorithm1_is_optimal_in_2d(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = paper_cost_model(2)
        alg1_cost, _ = upgrade(skyline, product, model)
        optimal_cost, _ = optimal_upgrade_2d(skyline, product, model)
        assert alg1_cost == pytest.approx(optimal_cost, abs=1e-9)

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=15),
        st.tuples(
            st.floats(min_value=1.05, max_value=2.0),
            st.floats(min_value=1.05, max_value=2.0),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_tail_extension_changes_nothing_in_2d(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(skyline)
        model = CostModel(
            [LinearCost(1000.0, 999.0), LinearCost(1.0, 0.5)]
        )
        verbatim_cost, _ = upgrade(skyline, product, model)
        extended_cost, _ = upgrade(skyline, product, model, EXTENDED)
        assert extended_cost == pytest.approx(verbatim_cost, abs=1e-9)


class TestOptimalExhaustive:
    def test_matches_definition_small(self, cost_model_3d):
        skyline = [(0.2, 0.5, 0.7), (0.5, 0.2, 0.6), (0.7, 0.6, 0.2)]
        product = (1.0, 1.0, 1.0)
        cost, up = optimal_upgrade_exhaustive(
            skyline, product, cost_model_3d
        )
        for s in skyline:
            assert not dominates(s, up)
        # Never worse than what Algorithm 1 reports.
        alg1_cost, _ = upgrade(skyline, product, cost_model_3d, EXTENDED)
        assert cost <= alg1_cost + 1e-12

    def test_grid_cap(self, cost_model_3d):
        skyline = bnl_skyline(
            [(0.01 * i, 0.5, 1.0 - 0.01 * i) for i in range(60)]
        )
        with pytest.raises(ConfigurationError):
            optimal_upgrade_exhaustive(
                skyline, (1.5, 1.5, 1.5), cost_model_3d, max_grid=100
            )

    def test_algorithm1_suboptimal_in_3d_witness(self):
        """A pinned 3-d instance where even extended Algorithm 1 loses.

        The cheapest escape mixes coordinates of *different* skyline
        points per dimension; Algorithm 1 always matches a single pivot on
        all non-sort dimensions.
        """
        model = paper_cost_model(3, offset=0.5)
        skyline = [
            (0.10, 0.90, 0.90),
            (0.90, 0.10, 0.90),
            (0.90, 0.90, 0.10),
            (0.50, 0.50, 0.50),
        ]
        product = (1.0, 1.0, 1.0)
        assert sorted(bnl_skyline(skyline)) == sorted(skyline)
        alg1_cost, _ = upgrade(skyline, product, model, EXTENDED)
        optimal_cost, optimal_point = optimal_upgrade_exhaustive(
            skyline, product, model
        )
        for s in skyline:
            assert not dominates(s, optimal_point)
        assert optimal_cost < alg1_cost - 1e-9


class TestSuboptimalityGapProperty:
    @given(
        st.lists(
            st.tuples(coord, coord, coord), min_size=1, max_size=8
        ),
        st.tuples(
            st.floats(min_value=1.05, max_value=2.0),
            st.floats(min_value=1.05, max_value=2.0),
            st.floats(min_value=1.05, max_value=2.0),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_algorithm1_never_beats_the_optimum(self, points, product):
        skyline = dominator_skyline(points, product)
        assume(0 < len(skyline) <= 8)
        model = paper_cost_model(3)
        alg1_cost, _ = upgrade(skyline, product, model, EXTENDED)
        optimal_cost, _ = optimal_upgrade_exhaustive(
            skyline, product, model
        )
        assert optimal_cost <= alg1_cost + 1e-9
