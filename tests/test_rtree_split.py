"""Tests for the node split strategies and the invariant checker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, RTreeError
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.split import (
    get_split_function,
    linear_split,
    quadratic_split,
)
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_rtree

coord = st.floats(
    min_value=-5, max_value=5, allow_nan=False, allow_infinity=False
)


def entries_from(points):
    return [Entry.for_point(tuple(p), i) for i, p in enumerate(points)]


@pytest.mark.parametrize(
    "split", [quadratic_split, linear_split], ids=["quadratic", "linear"]
)
class TestSplits:
    def test_respects_minimum(self, split):
        entries = entries_from([(float(i), 0.0) for i in range(9)])
        a, b = split(entries, 3)
        assert len(a) >= 3 and len(b) >= 3
        assert len(a) + len(b) == 9

    def test_partitions_without_loss(self, split):
        entries = entries_from([(float(i), float(-i)) for i in range(11)])
        a, b = split(entries, 4)
        ids = sorted(e.record_id for e in a + b)
        assert ids == list(range(11))

    def test_degenerate_identical_points(self, split):
        entries = entries_from([(1.0, 1.0)] * 8)
        a, b = split(entries, 3)
        assert len(a) + len(b) == 8
        assert min(len(a), len(b)) >= 3

    def test_too_few_entries_rejected(self, split):
        entries = entries_from([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            split(entries, 2)

    def test_invalid_min_entries(self, split):
        entries = entries_from([(float(i), 0.0) for i in range(5)])
        with pytest.raises(ConfigurationError):
            split(entries, 0)

    @given(
        st.lists(
            st.tuples(coord, coord), min_size=8, max_size=40, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_split_properties(self, split, points):
        entries = entries_from(points)
        minimum = max(1, len(entries) // 4)
        a, b = split(entries, minimum)
        assert len(a) >= minimum and len(b) >= minimum
        assert sorted(e.record_id for e in a + b) == sorted(
            e.record_id for e in entries
        )

    def test_seeds_come_from_opposite_clusters(self, split):
        # Two far-apart 2-d clusters: the seed pair must straddle them
        # (full group separation is heuristic-dependent, seeds are not).
        from repro.rtree.split import (
            _pick_seeds_linear,
            _pick_seeds_quadratic,
        )

        left = [(0.0 + i * 0.01, i * 0.02) for i in range(5)]
        right = [(100.0 + i * 0.01, i * 0.02) for i in range(5)]
        entries = entries_from(left + right)
        picker = (
            _pick_seeds_quadratic
            if split is quadratic_split
            else _pick_seeds_linear
        )
        i, j = picker(entries)
        assert (entries[i].point[0] < 50) != (entries[j].point[0] < 50)


class TestQuadraticSeparation:
    def test_quadratic_fully_separates_clusters(self):
        left = [(0.0 + i * 0.01, i * 0.02) for i in range(5)]
        right = [(100.0 + i * 0.01, i * 0.02) for i in range(5)]
        a, b = quadratic_split(entries_from(left + right), 4)
        groups = [sorted(e.point[0] for e in g) for g in (a, b)]
        groups.sort(key=lambda g: g[0])
        assert all(x < 50 for x in groups[0])
        assert all(x > 50 for x in groups[1])


class TestSplitRegistry:
    def test_lookup(self):
        assert get_split_function("quadratic") is quadratic_split
        assert get_split_function("linear") is linear_split

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_split_function("bogus")


class TestValidator:
    def test_detects_stale_parent_mbr(self):
        tree = RTree(2, max_entries=4)
        for i in range(30):
            tree.insert((i * 0.01, i * 0.01), i)
        # Corrupt: move a leaf point without refreshing ancestor MBRs.
        node = tree.root
        while not node.is_leaf:
            node = node.entries[0].child
        node.entries[0].point = (99.0, 99.0)
        node.entries[0].mbr = type(node.entries[0].mbr).from_point(
            (99.0, 99.0)
        )
        with pytest.raises(RTreeError):
            validate_rtree(tree)

    def test_detects_wrong_size(self):
        tree = RTree(2, max_entries=4)
        tree.insert((0.5, 0.5), 0)
        tree._size = 5
        with pytest.raises(RTreeError):
            validate_rtree(tree)

    def test_detects_point_in_internal_node(self):
        tree = RTree(2, max_entries=4)
        for i in range(30):
            tree.insert((i * 0.01, (30 - i) * 0.01), i)
        tree.root.entries.append(Entry.for_point((0.0, 0.0), 99))
        with pytest.raises(RTreeError):
            validate_rtree(tree)

    def test_underfull_node_detected_when_fill_checked(self):
        tree = RTree(2, max_entries=4)
        for i in range(30):
            tree.insert((i * 0.03, i * 0.02), i)
        victim = tree.root.entries[0].child
        while not victim.is_leaf:
            victim = victim.entries[0].child
        removed = victim.entries.pop()
        # Patch ancestors so only the fill invariant trips.
        node = Node(0, [removed])  # keep the point count consistent
        tree.root.entries.append(Entry.for_node(node))
        with pytest.raises(RTreeError):
            validate_rtree(tree, check_fill=True)
