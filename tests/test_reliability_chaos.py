"""Chaos suite: the serving stack under seeded fault injection.

Five scenario families, each replayed across 40 seeds (200 scenarios
total), assert the reliability layer's core invariants:

1. **No deadlock** — every ``result()`` call below is bounded by a
   timeout; a hang is a failure (CI additionally runs this file under
   pytest-timeout).
2. **Terminal responses** — every admitted query resolves to either a
   :class:`QueryResponse` or a *typed* library error; raw injected
   exceptions never leak to unrelated callers.
3. **Capacity** — worker crashes are contained; the pool ends every
   scenario with its full complement of live workers.
4. **Correctness under divergence** — with result corruption injected
   into the kernel paths and a 100%-sampling guard, every served answer
   matches the scalar oracle, and the kernels end up quarantined.

The competitor data is anti-correlated (points near a simplex shell) so
dominator skylines are large enough (>= 48 points) to engage the columnar
kernel paths — otherwise the corruption points would never be reached.
"""

import numpy as np
import pytest

from repro.core.session import MarketSession
from repro.exceptions import (
    TransientError,
    WorkerCrashError,
)
from repro.kernels.switch import kernels_enabled, set_kernels_enabled
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    KernelGuard,
    RetryPolicy,
    inject_faults,
    uninstall,
)
from repro.serve import (
    EngineConfig,
    ProductQuery,
    QueryResponse,
    TopKQuery,
    UpgradeEngine,
)

SEEDS = range(40)
N_COMPETITORS = 120
N_PRODUCTS = 24
TOPK = 5
#: Product ids queried in every scenario (with one repeat for cache paths).
PRODUCT_IDS = (0, 7, 15, 23, 7)


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    uninstall()
    set_kernels_enabled(True)


_datasets = {}


def get_dataset(seed):
    """(competitors, products, expected) for one of 8 shared datasets.

    ``expected`` maps ``("topk", k)`` to the oracle's top-k costs and
    ``("product", pid)`` to the oracle's (cost, upgraded) — computed once
    on a clean session with no injector installed.
    """
    key = seed % 8
    if key in _datasets:
        return _datasets[key]
    rng = np.random.default_rng(1000 + key)
    u = rng.dirichlet(np.ones(2), size=N_COMPETITORS)
    r = 0.95 + 0.05 * rng.random((N_COMPETITORS, 1))
    competitors = u * r * 2
    products = 1.9 + 0.2 * rng.random((N_PRODUCTS, 2))
    session = MarketSession.from_points(
        competitors, products, max_entries=8
    )
    expected = {("topk", TOPK): session.top_k(TOPK).costs}
    for pid in set(PRODUCT_IDS):
        result = next(
            r
            for r in session.top_k(N_PRODUCTS).results
            if r.record_id == pid
        )
        expected[("product", pid)] = (result.cost, result.upgraded)
    _datasets[key] = (competitors, products, expected)
    return _datasets[key]


def make_session(seed):
    competitors, products, _ = get_dataset(seed)
    return MarketSession.from_points(
        competitors, products, max_entries=8
    )


def scenario_queries(deadline_s=None):
    queries = [ProductQuery(pid, deadline_s=deadline_s) for pid in PRODUCT_IDS]
    queries.insert(2, TopKQuery(k=TOPK, deadline_s=deadline_s))
    queries.append(TopKQuery(k=TOPK, deadline_s=deadline_s))
    return queries


def assert_response_correct(query, response, expected):
    __tracebackhide__ = True
    assert isinstance(response, QueryResponse)
    if response.partial:
        return  # a deadline partial is a valid terminal response
    if isinstance(query, TopKQuery):
        costs = [r.cost for r in response.results]
        assert costs == pytest.approx(expected[("topk", query.k)])
    else:
        cost, upgraded = expected[("product", query.product_id)]
        (result,) = response.results
        assert result.cost == pytest.approx(cost)
        assert result.upgraded == pytest.approx(upgraded)


class TestTransientQueryFaults:
    """Injected R-tree faults are retried; survivors are exact."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_retries_absorb_or_fail_typed(self, seed):
        _, _, expected = get_dataset(seed)
        session = make_session(seed)
        plan = FaultPlan(seed=seed, rate=0.3, points=("rtree.query",))
        with UpgradeEngine(
            session,
            EngineConfig(
                workers=0,
                cache=False,
                kernel_guard=KernelGuard(sample_rate=0.0),
                retry_policy=RetryPolicy(
                    base_delay_s=0.0002, max_delay_s=0.001
                ),
            ),
        ) as engine:
            queries = scenario_queries()
            with inject_faults(plan) as injector:
                responses = engine.execute_batch(
                    queries, raise_errors=False
                )
            assert injector.stats()["rtree.query"]["reached"] > 0
            failures = 0
            for query, response in zip(queries, responses):
                if isinstance(response, BaseException):
                    # Terminal failure only after the retry budget; always
                    # the typed transient error, never something raw.
                    assert isinstance(response, TransientError)
                    failures += 1
                else:
                    assert_response_correct(query, response, expected)
            metrics = engine.metrics()
            assert metrics["requests"] == len(queries)
            assert metrics["errors"] == failures
            if injector.fired("rtree.query") > failures:
                assert metrics["retries"] > 0


class TestHandlerCrashContainment:
    """Crashing batch executions fail typed; the pool keeps its workers."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pool_capacity_never_degrades(self, seed):
        _, _, expected = get_dataset(seed)
        session = make_session(seed)
        plan = FaultPlan(seed=seed, rate=0.5, points=("serve.handler",))
        workers = 2
        with UpgradeEngine(
            session,
            EngineConfig(
                workers=workers,
                batch_max=4,
                kernel_guard=KernelGuard(sample_rate=0.0),
            ),
        ) as engine:
            queries = scenario_queries()
            with inject_faults(plan) as injector:
                pendings = engine.submit_batch(queries)
                crashed = 0
                for query, pending in zip(queries, pendings):
                    try:
                        response = pending.result(timeout=10.0)
                    except WorkerCrashError:
                        crashed += 1
                    else:
                        assert_response_correct(query, response, expected)
            assert crashed == 0 or injector.fired("serve.handler") > 0
            assert engine._pool.alive_workers == workers
            assert engine._pool.crash_count == 0  # contained upstream
            # Chaos off: the same engine keeps serving, exactly.
            response = engine.query(TopKQuery(k=TOPK))
            assert_response_correct(TopKQuery(k=TOPK), response, expected)
            assert engine.close() == 0


class TestCacheFaultDegradation:
    """A faulty cache costs recomputes, never failed requests."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_request_succeeds(self, seed):
        _, _, expected = get_dataset(seed)
        session = make_session(seed)
        plan = FaultPlan(seed=seed, rate=0.5, points=("serve.cache",))
        with UpgradeEngine(
            session,
            EngineConfig(
                workers=0,
                cache=True,
                kernel_guard=KernelGuard(sample_rate=0.0),
            ),
        ) as engine:
            queries = scenario_queries() * 2  # repeats exercise hits too
            with inject_faults(plan) as injector:
                responses = engine.execute_batch(queries)
            for query, response in zip(queries, responses):
                assert not response.partial
                assert_response_correct(query, response, expected)
            metrics = engine.metrics()
            assert metrics["errors"] == 0
            if injector.fired("serve.cache") > 0:
                assert metrics["cache_faults"] > 0


class TestLatencySpikesWithDeadlines:
    """Slow traversals burn deadlines, not correctness: every response is
    terminal, and complete answers are exact."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_terminal_responses_under_latency(self, seed):
        _, _, expected = get_dataset(seed)
        session = make_session(seed)
        spec = FaultSpec(rate=0.5, kind="latency", latency_s=0.002)
        plan = FaultPlan(seed=seed, points={"rtree.query": spec})
        with UpgradeEngine(
            session,
            EngineConfig(
                workers=0,
                cache=False,
                kernel_guard=KernelGuard(sample_rate=0.0),
            ),
        ) as engine:
            queries = scenario_queries(deadline_s=0.02)
            with inject_faults(plan):
                responses = engine.execute_batch(queries)
            partials = 0
            for query, response in zip(queries, responses):
                partials += response.partial
                assert_response_correct(query, response, expected)
            assert engine.metrics()["partials"] == partials


class TestKernelCorruptionQuarantine:
    """Corrupted kernel verdicts: the 100%-sampling guard serves the
    oracle's answer and quarantines the kernels."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_answers_match_scalar_oracle(self, seed):
        _, _, expected = get_dataset(seed)
        session = make_session(seed)
        corrupt = FaultSpec(rate=1.0, kind="corrupt")
        plan = FaultPlan(
            seed=seed,
            points={"kernels.dominance": corrupt, "kernels.bounds": corrupt},
        )
        guard = KernelGuard(sample_rate=1.0)
        with UpgradeEngine(
            session, EngineConfig(workers=0, cache=True, kernel_guard=guard)
        ) as engine:
            queries = scenario_queries()
            with inject_faults(plan) as injector:
                responses = engine.execute_batch(
                    queries, raise_errors=False
                )
            for query, response in zip(queries, responses):
                assert not isinstance(response, BaseException)
                assert_response_correct(query, response, expected)
            if injector.fired("kernels.dominance") or injector.fired(
                "kernels.bounds"
            ):
                # Corruption actually changed an answer at least once:
                # the guard must have caught it and flipped to scalar.
                if guard.divergences:
                    assert guard.quarantined
                    assert not kernels_enabled()
                    rel = engine.metrics()["reliability"]
                    assert rel["kernel_guard"]["quarantined"]
                    assert engine.metrics()["quarantines"] >= 1
            # Post-quarantine service stays correct (scalar path now).
            response = engine.query(ProductQuery(0))
            assert_response_correct(ProductQuery(0), response, expected)


def test_scenario_census():
    """The suite holds the promised >= 200 seeded fault scenarios."""
    families = 5
    assert families * len(SEEDS) >= 200
