"""Tests for anti-dominant-region predicates."""

from hypothesis import given, strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.point import dominates
from repro.geometry.region import (
    adr_contains,
    mbr_overlaps_adr,
    point_in_adr,
)

coord = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)
pt = st.tuples(coord, coord)


class TestPointInAdr:
    def test_dominator_is_inside(self):
        assert point_in_adr((0.2, 0.3), (1.0, 1.0))

    def test_equal_point_is_inside_but_not_dominating(self):
        t = (1.0, 1.0)
        assert point_in_adr(t, t)
        assert not dominates(t, t)

    def test_worse_on_one_dim_is_outside(self):
        assert not point_in_adr((0.2, 1.5), (1.0, 1.0))

    @given(pt, pt)
    def test_every_dominator_lies_inside(self, p, t):
        if dominates(p, t):
            assert point_in_adr(p, t)


class TestMbrOverlapsAdr:
    def test_overlap_iff_low_corner_weakly_dominates(self):
        corner = (1.0, 1.0)
        assert mbr_overlaps_adr(MBR((0.5, 0.5), (2.0, 2.0)), corner)
        assert not mbr_overlaps_adr(MBR((1.5, 0.0), (2.0, 2.0)), corner)

    def test_boundary_mbr_overlaps(self):
        assert mbr_overlaps_adr(MBR((1.0, 1.0), (2.0, 2.0)), (1.0, 1.0))

    @given(st.lists(pt, min_size=1, max_size=6), pt)
    def test_no_overlap_implies_no_dominators(self, points, t):
        box = MBR.from_points(points)
        if not mbr_overlaps_adr(box, t):
            assert not any(dominates(p, t) for p in points)


class TestAdrContains:
    def test_fully_contained_box(self):
        assert adr_contains((1.0, 1.0), MBR((0.1, 0.1), (0.9, 0.9)))

    def test_protruding_box(self):
        assert not adr_contains((1.0, 1.0), MBR((0.1, 0.1), (0.9, 1.1)))

    @given(st.lists(pt, min_size=1, max_size=6), pt)
    def test_containment_implies_weak_dominance_of_corner(self, points, t):
        box = MBR.from_points(points)
        if adr_contains(t, box):
            for p in points:
                assert all(a <= b for a, b in zip(p, t))
