"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.generators import (
    anti_correlated,
    correlated,
    generate,
    independent,
    paper_workload,
)
from repro.exceptions import ConfigurationError
from repro.skyline.vectorized import numpy_skyline_mask


class TestShapesAndRanges:
    @pytest.mark.parametrize(
        "maker", [independent, correlated, anti_correlated]
    )
    def test_shape_and_unit_range(self, maker):
        pts = maker(500, 4, seed=1)
        assert pts.shape == (500, 4)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    def test_zero_points(self):
        assert independent(0, 3, seed=1).shape == (0, 3)

    def test_one_dimensional_anti(self):
        pts = anti_correlated(100, 1, seed=2)
        assert pts.shape == (100, 1)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            independent(-1, 2)
        with pytest.raises(ConfigurationError):
            independent(10, 0)


class TestDeterminism:
    @pytest.mark.parametrize(
        "maker", [independent, correlated, anti_correlated]
    )
    def test_same_seed_same_data(self, maker):
        a = maker(200, 3, seed=42)
        b = maker(200, 3, seed=42)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize(
        "maker", [independent, correlated, anti_correlated]
    )
    def test_different_seed_different_data(self, maker):
        a = maker(200, 3, seed=1)
        b = maker(200, 3, seed=2)
        assert not np.array_equal(a, b)


class TestDistributionCharacter:
    def test_skyline_size_ordering(self):
        """anti-correlated >> independent >> correlated (the paper's premise)."""
        sizes = {}
        for name, maker in [
            ("anti", anti_correlated),
            ("ind", independent),
            ("corr", correlated),
        ]:
            pts = maker(5000, 3, seed=7)
            sizes[name] = int(numpy_skyline_mask(pts).sum())
        assert sizes["anti"] > 3 * sizes["ind"]
        assert sizes["ind"] > sizes["corr"]

    def test_anti_correlation_is_negative(self):
        pts = anti_correlated(5000, 2, seed=8)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert rho < -0.5

    def test_correlation_is_positive(self):
        pts = correlated(5000, 2, seed=8)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert rho > 0.5

    def test_independent_near_zero_correlation(self):
        pts = independent(5000, 2, seed=8)
        rho = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert abs(rho) < 0.1


class TestGenerateDispatch:
    def test_rescaling(self):
        pts = generate("independent", 100, 2, seed=1, low=1.0, high=2.0)
        assert pts.min() >= 1.0
        assert pts.max() <= 2.0

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            generate("zipfian", 10, 2)

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            generate("independent", 10, 2, low=2.0, high=1.0)


class TestPaperWorkload:
    def test_layout(self):
        p, t = paper_workload("independent", 300, 50, 3, seed=1)
        assert p.shape == (300, 3)
        assert t.shape == (50, 3)
        assert p.max() <= 1.0
        assert t.min() > 1.0
        assert t.max() <= 2.0

    def test_every_product_dominated(self):
        from repro.geometry.point import dominates

        p, t = paper_workload("independent", 100, 20, 2, seed=3)
        for prod in t:
            assert any(dominates(tuple(c), tuple(prod)) for c in p)

    def test_deterministic(self):
        a = paper_workload("anti_correlated", 100, 20, 2, seed=5)
        b = paper_workload("anti_correlated", 100, 20, 2, seed=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
