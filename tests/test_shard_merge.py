"""The scatter-gather merge layer, against single-process oracles.

``merge_skylines`` must reproduce ``get_dominating_skyline``'s canonical
``(sum, lex)`` order from arbitrary partitions of the competitor set —
that is the property the sharded product path rests on.
``ThresholdMerge`` is pinned against hand-built stream scenarios:
threshold evolution, strict-inequality emission at ties, exhaustion
flushes, and the uncosted-sighting guard.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dominators import (
    dominators_brute_force,
    get_dominating_skyline,
    merge_skylines,
)
from repro.core.types import UpgradeResult
from repro.rtree.tree import RTree
from repro.shard.merge import ThresholdMerge
from repro.shard.partition import (
    partition_catalog,
    partition_members,
    process_of,
    shard_of,
    shards_of_process,
)

# ---------------------------------------------------------------------------
# partition maps


class TestPartition:
    def test_shard_and_process_maps(self):
        assert [shard_of(r, 4) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert [process_of(s, 2) for s in range(4)] == [0, 1, 0, 1]

    def test_shards_of_process_partitions_exactly(self):
        n_shards, n_procs = 7, 3
        owned = [
            shards_of_process(p, n_shards, n_procs)
            for p in range(n_procs)
        ]
        flat = sorted(s for shards in owned for s in shards)
        assert flat == list(range(n_shards))
        for p, shards in enumerate(owned):
            assert all(process_of(s, n_procs) == p for s in shards)

    def test_partition_catalog_routes_by_id(self):
        ids = [0, 1, 2, 5, 9, 10]
        points = [(float(i),) for i in ids]
        buckets = partition_catalog(ids, points, 3)
        assert buckets[0] == ([0, 9], [(0.0,), (9.0,)])
        assert buckets[1] == ([1, 10], [(1.0,), (10.0,)])
        assert buckets[2] == ([2, 5], [(2.0,), (5.0,)])

    def test_partition_members_sorted_ascending(self):
        members = {9: (9.0,), 0: (0.0,), 3: (3.0,), 1: (1.0,)}
        buckets = partition_members(members, 3)
        assert buckets[0] == ([0, 3, 9], [(0.0,), (3.0,), (9.0,)])
        assert buckets[1] == ([1], [(1.0,)])
        assert buckets[2] == ([], [])


# ---------------------------------------------------------------------------
# merge_skylines vs the single-tree traversal


def random_catalog(rng, n, dims):
    return [
        tuple(round(rng.uniform(0.0, 1.0), 3) for _ in range(dims))
        for _ in range(n)
    ]


@pytest.mark.parametrize("n_parts", [1, 2, 3, 5])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merge_skylines_matches_single_tree(seed, n_parts):
    rng = random.Random(seed)
    dims = 3
    competitors = random_catalog(rng, 60, dims)
    products = random_catalog(rng, 15, dims)

    whole = RTree.bulk_load(competitors)
    parts = [competitors[i::n_parts] for i in range(n_parts)]
    part_trees = [
        RTree.bulk_load(part) if part else RTree(dims) for part in parts
    ]

    for product in products:
        expected = get_dominating_skyline(whole, product)
        merged = merge_skylines(
            [get_dominating_skyline(t, product) for t in part_trees]
        )
        assert merged == expected  # canonical order, bit for bit


def test_merge_skylines_dedupes_cross_shard_duplicates():
    # The same point living in two shards must appear once, and a point
    # dominated only by a point from *another* shard must be dropped.
    a = [(0.2, 0.2), (0.5, 0.1)]
    b = [(0.2, 0.2), (0.1, 0.4)]
    merged = merge_skylines([a, b])
    assert merged == [(0.2, 0.2), (0.1, 0.4), (0.5, 0.1)]
    # sorted by (sum, lex); every survivor is mutually non-dominated
    brute = dominators_brute_force(set(a + b), (1.0, 1.0))
    assert set(merged) <= set(brute)
    # (0.3, 0.4) is dominated by shard a's (0.2, 0.2): dropped.
    merged2 = merge_skylines([a, [(0.3, 0.4)]])
    assert (0.3, 0.4) not in merged2


def test_merge_skylines_empty_inputs():
    assert merge_skylines([]) == []
    assert merge_skylines([[], []]) == []
    assert merge_skylines([[], [(0.1, 0.2)]]) == [(0.1, 0.2)]


# ---------------------------------------------------------------------------
# ThresholdMerge


def result(rid, cost):
    return UpgradeResult(rid, (0.0,), (0.0,), cost)


class TestThresholdMerge:
    def test_emits_only_below_threshold(self):
        merge = ThresholdMerge(n_shards=2, k=3)
        new = merge.observe(0, [(1.0, 10)], frontier=1.0, exhausted=False)
        assert new == [10]
        merge.add_candidate(result(10, 1.5))
        # T = max(1.0, 0.0) = 1.0: cost 1.5 is not bound-proven yet.
        assert merge.drain() == []
        merge.observe(1, [(2.0, 11)], frontier=2.0, exhausted=False)
        merge.add_candidate(result(11, 2.5))
        # T = 2.0 now proves cost 1.5 final, not 2.5.
        assert [r.record_id for r in merge.drain()] == [10]
        assert [r.record_id for r in merge.emitted] == [10]

    def test_strict_inequality_holds_ties(self):
        # A candidate whose cost *equals* T may still be beaten to its
        # canonical slot by an unsighted product with the same cost and
        # a smaller record id — it must not be emitted yet.
        merge = ThresholdMerge(n_shards=2, k=1)
        merge.observe(0, [(1.0, 7)], frontier=1.0, exhausted=False)
        merge.add_candidate(result(7, 1.0))
        assert merge.drain() == []
        merge.observe(1, [], frontier=1.0, exhausted=True)
        merge.observe(0, [], frontier=float("inf"), exhausted=True)
        assert [r.record_id for r in merge.drain()] == [7]

    def test_exhaustion_flushes_heap(self):
        merge = ThresholdMerge(n_shards=1, k=5)
        merge.observe(
            0, [(1.0, 1), (2.0, 2)], frontier=float("inf"), exhausted=True
        )
        merge.add_candidate(result(1, 1.0))
        merge.add_candidate(result(2, 2.0))
        drained = merge.drain()
        assert [r.record_id for r in drained] == [1, 2]
        assert merge.done
        assert merge.all_exhausted

    def test_canonical_tie_order_by_record_id(self):
        merge = ThresholdMerge(n_shards=1, k=3)
        merge.observe(
            0,
            [(1.0, 30), (1.0, 10), (1.0, 20)],
            frontier=float("inf"),
            exhausted=True,
        )
        for rid in (30, 10, 20):
            merge.add_candidate(result(rid, 1.0))
        assert [r.record_id for r in merge.drain()] == [10, 20, 30]

    def test_duplicate_sightings_counted_once(self):
        merge = ThresholdMerge(n_shards=2, k=2)
        first = merge.observe(0, [(1.0, 5)], 1.0, False)
        second = merge.observe(1, [(1.2, 5)], 1.2, False)
        assert first == [5]
        assert second == []  # already sighted: no second exact-cost owed
        merge.add_candidate(result(5, 1.3))
        assert merge.drain() == []  # 1.3 >= T=1.2

    def test_drain_with_uncosted_sightings_is_an_error(self):
        merge = ThresholdMerge(n_shards=1, k=1)
        merge.observe(0, [(1.0, 5)], 1.0, False)
        with pytest.raises(ValueError):
            merge.drain()

    def test_done_at_k(self):
        merge = ThresholdMerge(n_shards=1, k=1)
        merge.observe(0, [(1.0, 5)], 3.0, False)
        merge.add_candidate(result(5, 1.0))
        assert [r.record_id for r in merge.drain()] == [5]
        assert merge.done
        assert not merge.all_exhausted


# ---------------------------------------------------------------------------
# ThresholdMerge degraded mode (shards marked down)


class TestThresholdMergeDegraded:
    def test_zero_live_shards_terminates_empty(self):
        # Every shard down before contributing: the merge must terminate
        # (vacuously all-live-exhausted), drain nothing, and report zero
        # coverage — the engine turns this into an empty partial answer.
        merge = ThresholdMerge(n_shards=3, k=5)
        for shard in range(3):
            merge.mark_down(shard)
        assert merge.all_live_exhausted
        assert merge.done
        assert merge.drain() == []
        assert merge.coverage == 0.0

    def test_down_after_contributing_flushes_from_live(self):
        merge = ThresholdMerge(n_shards=2, k=5)
        merge.observe(0, [(1.0, 1)], frontier=1.0, exhausted=False)
        merge.add_candidate(result(1, 1.5))
        merge.mark_down(0)
        # Shard 0's frontier freezes at 1.0 — still a lower bound — so
        # cost 1.5 is not provable until the live shard's frontier
        # passes it.
        assert merge.drain() == []
        merge.observe(1, [], frontier=2.0, exhausted=False)
        assert [r.record_id for r in merge.drain()] == [1]
        merge.observe(1, [], frontier=float("inf"), exhausted=True)
        assert merge.all_live_exhausted
        assert merge.done
        assert merge.coverage == 0.5

    def test_exhausted_shard_is_not_marked_down(self):
        # An exhausted stream contributed everything it ever could:
        # marking its process down afterwards must not dent coverage.
        merge = ThresholdMerge(n_shards=2, k=2)
        merge.observe(0, [], frontier=float("inf"), exhausted=True)
        merge.mark_down(0)
        assert not merge.down[0]
        assert merge.coverage == 1.0

    def test_empty_skyline_shard_exhausts_immediately(self):
        # A shard whose competitors dominate nothing streams no rows and
        # exhausts at once; the merge completes from the other shard and
        # the answer stays full-coverage.
        merge = ThresholdMerge(n_shards=2, k=2)
        merge.observe(0, [], frontier=float("inf"), exhausted=True)
        merge.observe(
            1, [(1.0, 1), (2.0, 2)], frontier=float("inf"), exhausted=True
        )
        merge.add_candidate(result(1, 1.0))
        merge.add_candidate(result(2, 2.0))
        assert [r.record_id for r in merge.drain()] == [1, 2]
        assert merge.coverage == 1.0
        assert merge.done

    def test_degraded_emission_is_prefix_of_canonical_order(self):
        # Run the same stream scenario twice — once clean, once with a
        # shard dying midway — and check every degraded emission round
        # is a prefix of the canonical (cost, record_id) order over the
        # candidates the degraded run actually emitted.
        rows0 = [(1.0, 4, 1.1), (2.0, 2, 2.0), (3.0, 6, 3.5)]
        rows1 = [(1.5, 3, 1.6), (2.5, 5, 2.6)]

        def feed(merge, shard, rows, upto, exhausted):
            batch = [(lb, rid) for lb, rid, _ in rows[:upto]]
            frontier = (
                float("inf") if exhausted else rows[upto - 1][0]
            )
            new = merge.observe(shard, batch, frontier, exhausted)
            for lb, rid, cost in rows[:upto]:
                if rid in new:
                    merge.add_candidate(result(rid, cost))

        clean = ThresholdMerge(n_shards=2, k=5)
        feed(clean, 0, rows0, 3, True)
        feed(clean, 1, rows1, 2, True)
        clean.drain()
        canonical = [r.record_id for r in clean.emitted]

        degraded = ThresholdMerge(n_shards=2, k=5)
        emitted = []
        feed(degraded, 0, rows0, 2, False)
        feed(degraded, 1, rows1, 1, False)
        emitted += degraded.drain()
        degraded.mark_down(1)  # shard 1 dies mid-stream
        emitted += degraded.drain()
        feed(degraded, 0, rows0, 3, True)
        emitted += degraded.drain()
        assert degraded.all_live_exhausted and degraded.done
        got = [r.record_id for r in emitted]
        # Every emission in ascending canonical order, and the whole
        # degraded answer is a subsequence that starts at the front of
        # the canonical order up to the last emitted element (nothing
        # cheap was skipped among what the degraded run sighted).
        assert got == sorted(
            got, key=lambda rid: canonical.index(rid)
        )
        sighted = [rid for rid in canonical if rid in degraded.sighted]
        assert got == sighted[: len(got)]
        assert degraded.coverage == 0.5

    def test_abandon_releases_uncosted_sighting(self):
        merge = ThresholdMerge(n_shards=1, k=2)
        merge.observe(
            0, [(1.0, 1), (2.0, 2)], frontier=float("inf"), exhausted=True
        )
        merge.add_candidate(result(1, 1.0))
        merge.abandon(2)  # its exact cost was uncomputable (shards down)
        assert [r.record_id for r in merge.drain()] == [1]
        assert merge.done
