"""The lint engine and every rule, on purpose-built fixture trees.

Each fixture is a miniature ``src/repro`` written into ``tmp_path``; the
assertions pin exact rule ids *and* line numbers so a rule that drifts
(fires on the wrong line, or stops firing) fails loudly.  The final
tests run the real rules over the real repo — the repo itself must lint
clean — and exercise the ``skyup lint`` CLI surface.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    Finding,
    collect_modules,
    format_json,
    format_text,
    load_baseline,
    run_lint,
    save_baseline,
)
from repro.cli import main
from repro.exceptions import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root: Path, files: dict) -> Path:
    """Write ``{relpath: source}`` under ``root`` and return ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def findings_for(root: Path, rule: str):
    return [f for f in run_lint(root, select=[rule]) if f.rule == rule]


# ---------------------------------------------------------------------------
# engine plumbing


def test_collect_modules_requires_source_tree(tmp_path):
    with pytest.raises(ConfigurationError):
        collect_modules(tmp_path)


def test_collect_modules_rejects_syntax_errors(tmp_path):
    write_tree(tmp_path, {"src/repro/broken.py": "def oops(:\n"})
    with pytest.raises(ConfigurationError):
        collect_modules(tmp_path)


def test_unknown_rule_selector_is_a_config_error(tmp_path):
    write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
    with pytest.raises(ConfigurationError):
        run_lint(tmp_path, select=["SKY999"])


def test_reporters_render_counts(tmp_path):
    write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
    text = format_text(run_lint(tmp_path))
    assert text.endswith("0 findings")
    payload = json.loads(format_json(run_lint(tmp_path)))
    assert payload == {"count": 0, "findings": []}


# ---------------------------------------------------------------------------
# SKY101 / SKY102 — lock discipline

LOCKY = '''\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock
        self.items.append(0)  # constructors are exempt

    def add(self, x):
        with self._lock:
            self.items.append(x)

    def peek(self):
        return len(self.items)

    # holds-lock: _lock
    def _append_locked(self, x):
        self.items.append(x)
'''

GLOBALLY = '''\
import threading

_LOCK = threading.Lock()
_COUNT = 0  # guarded-by: _LOCK


def bump():
    global _COUNT
    with _LOCK:
        _COUNT += 1


def peek():
    return _COUNT
'''


def test_sky101_flags_unlocked_class_attribute_access(tmp_path):
    write_tree(tmp_path, {"src/repro/locky.py": LOCKY})
    found = findings_for(tmp_path, "SKY101")
    assert [(f.line, f.rule) for f in found] == [(15, "SKY101")]
    assert "'items' outside 'with _lock' in Box.peek" in found[0].message


def test_sky101_flags_unlocked_module_global(tmp_path):
    write_tree(tmp_path, {"src/repro/globally.py": GLOBALLY})
    found = findings_for(tmp_path, "SKY101")
    assert [f.line for f in found] == [14]
    assert "_COUNT" in found[0].message


def test_sky101_inline_suppression_silences(tmp_path):
    source = LOCKY.replace(
        "        return len(self.items)",
        "        return len(self.items)  # skyup: ignore[SKY101]",
    )
    write_tree(tmp_path, {"src/repro/locky.py": source})
    assert findings_for(tmp_path, "SKY101") == []


def test_sky101_comment_line_above_suppresses(tmp_path):
    source = LOCKY.replace(
        "        return len(self.items)",
        "        # skyup: ignore[SKY101] — benign snapshot read\n"
        "        return len(self.items)",
    )
    write_tree(tmp_path, {"src/repro/locky.py": source})
    assert findings_for(tmp_path, "SKY101") == []


ALIASED = '''\
import contextlib
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock

    def add_via_alias(self, x):
        lk = self._lock
        with lk:
            self.items.append(x)

    def add_via_stack(self, x):
        stack = contextlib.ExitStack()
        stack.enter_context(self._lock)
        self.items.append(x)

    def add_unlocked(self, x):
        lk = self._lock
        self.items.append(x)
'''


def test_sky101_tracks_lock_aliases_and_enter_context(tmp_path):
    write_tree(tmp_path, {"src/repro/aliased.py": ALIASED})
    found = findings_for(tmp_path, "SKY101")
    # The alias acquisition and the ExitStack acquisition both count;
    # merely *naming* the alias without entering it does not.
    assert [(f.line, f.rule) for f in found] == [(22, "SKY101")]
    assert "add_unlocked" in found[0].message


def test_sky101_module_scope_lock_alias(tmp_path):
    source = '''\
import threading

_LOCK = threading.Lock()
_COUNT = 0  # guarded-by: _LOCK


def bump():
    global _COUNT
    guard = _LOCK
    with guard:
        _COUNT += 1
'''
    write_tree(tmp_path, {"src/repro/modalias.py": source})
    assert findings_for(tmp_path, "SKY101") == []


def test_sky102_flags_annotation_naming_missing_lock(tmp_path):
    source = '''\
class Box:
    def __init__(self):
        self.items = []  # guarded-by: _missing
'''
    write_tree(tmp_path, {"src/repro/typo.py": source})
    found = findings_for(tmp_path, "SKY102")
    assert [(f.line, f.rule) for f in found] == [(3, "SKY102")]
    assert "_missing" in found[0].message


# ---------------------------------------------------------------------------
# SKY201 / SKY202 / SKY203 — exception taxonomy

TAXONOMY_FILES = {
    "src/repro/exceptions.py": (
        "class SkyUpError(Exception):\n    pass\n"
    ),
    "src/repro/raisy.py": '''\
from repro.exceptions import SkyUpError


def ok_taxonomy():
    raise SkyUpError("fine")


def ok_builtin():
    raise ValueError("fine")


def bad():
    raise RuntimeError("boom")


def dynamic(exc):
    raise exc  # dynamic raises are out of static reach
''',
}


def test_sky201_flags_off_taxonomy_raise(tmp_path):
    write_tree(tmp_path, TAXONOMY_FILES)
    found = findings_for(tmp_path, "SKY201")
    assert [(f.line, f.rule) for f in found] == [(13, "SKY201")]
    assert "RuntimeError" in found[0].message


def test_sky202_flags_bare_except(tmp_path):
    source = '''\
def swallow():
    try:
        return 1
    except:
        return 0
'''
    write_tree(tmp_path, {"src/repro/bare.py": source})
    found = findings_for(tmp_path, "SKY202")
    assert [(f.line, f.rule) for f in found] == [(4, "SKY202")]


def test_sky203_flags_broad_except_outside_boundary(tmp_path):
    source = '''\
def fragile():
    try:
        return 1
    except Exception:
        return 0


# error-boundary: supervision loop must contain anything
def boundary():
    try:
        return 1
    except Exception:
        return 0
'''
    write_tree(tmp_path, {"src/repro/broad.py": source})
    found = findings_for(tmp_path, "SKY203")
    assert [(f.line, f.rule) for f in found] == [(4, "SKY203")]
    assert "error-boundary" in found[0].message


# ---------------------------------------------------------------------------
# SKY301 — determinism


def test_sky301_flags_entropy_in_core_only(tmp_path):
    core = '''\
import random
import time


def jitter():
    return random.random() + time.time()


def fine(rng):
    return rng.random() + time.monotonic()
'''
    write_tree(
        tmp_path,
        {
            "src/repro/core/noisy.py": core,
            "src/repro/bench/noisy.py": core,  # bench/ is not checked
        },
    )
    found = findings_for(tmp_path, "SKY301")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/core/noisy.py", 6),
        ("src/repro/core/noisy.py", 6),
    ]
    messages = " ".join(f.message for f in found)
    assert "random.random" in messages and "time.time" in messages


def test_sky301_accepts_seeded_generators(tmp_path):
    source = '''\
import random

import numpy as np


def seeded(seed):
    return np.random.default_rng(seed), random.Random(seed)
'''
    write_tree(tmp_path, {"src/repro/core/seeded.py": source})
    assert findings_for(tmp_path, "SKY301") == []


# ---------------------------------------------------------------------------
# SKY401 / SKY402 — injection-point registry

INJECTION_FILES = {
    "src/repro/reliability/faults.py": (
        'INJECTION_POINTS = frozenset({"serve.handler", "rtree.query"})\n'
    ),
    "src/repro/serve/handler.py": '''\
def handle(plan):
    plan.maybe_inject("serve.handler")
    plan.maybe_inject("serve.hanlder")
''',
}


def test_sky401_flags_unregistered_call_site(tmp_path):
    write_tree(tmp_path, INJECTION_FILES)
    found = findings_for(tmp_path, "SKY401")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/serve/handler.py", 3)
    ]
    assert "serve.hanlder" in found[0].message


def test_sky402_flags_unreachable_registry_entry(tmp_path):
    write_tree(tmp_path, INJECTION_FILES)
    found = findings_for(tmp_path, "SKY402")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/reliability/faults.py", 1)
    ]
    assert "rtree.query" in found[0].message


# ---------------------------------------------------------------------------
# SKY501 / SKY502 / SKY503 — kernel-oracle parity

PARITY_FILES = {
    "src/repro/kernels/__init__.py": (
        "from repro.kernels.impl import good_kernel, naked_kernel, "
        "stale_kernel\n"
        '__all__ = ["good_kernel", "naked_kernel", "stale_kernel"]\n'
    ),
    "src/repro/kernels/impl.py": '''\
def good_kernel():
    """Twinned and covered.

    Scalar oracle: `repro.core.thing.scalar_twin`
    """


def naked_kernel():
    """No oracle declared."""


def stale_kernel():
    """Twin was renamed away.

    Scalar oracle: `repro.core.thing.gone_twin`
    """
''',
    "src/repro/core/thing.py": "def scalar_twin():\n    return 0\n",
    "tests/test_kernels_agreement.py": (
        "# exercises good_kernel and naked_kernel only\n"
    ),
}


def test_sky501_flags_missing_oracle_declaration(tmp_path):
    write_tree(tmp_path, PARITY_FILES)
    found = findings_for(tmp_path, "SKY501")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/kernels/impl.py", 8)
    ]
    assert "naked_kernel" in found[0].message


def test_sky502_flags_unresolved_oracle(tmp_path):
    write_tree(tmp_path, PARITY_FILES)
    found = findings_for(tmp_path, "SKY502")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/kernels/impl.py", 12)
    ]
    assert "gone_twin" in found[0].message


def test_sky503_flags_missing_agreement_coverage(tmp_path):
    write_tree(tmp_path, PARITY_FILES)
    found = findings_for(tmp_path, "SKY503")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/kernels/impl.py", 12)
    ]
    assert "stale_kernel" in found[0].message


# ---------------------------------------------------------------------------
# SKY601 — hot-path clock discipline


def test_sky601_flags_raw_perf_counter_in_hot_paths(tmp_path):
    source = '''\
import time
from time import perf_counter


def slow_phase():
    start = time.perf_counter()
    mid = perf_counter()
    return time.monotonic() - start + mid
'''
    write_tree(
        tmp_path,
        {
            "src/repro/serve/hot.py": source,
            "src/repro/core/hot.py": source,
            "src/repro/serve/bench.py": source,  # harness: exempt
            "src/repro/bench/hot.py": source,  # outside checked dirs
        },
    )
    found = findings_for(tmp_path, "SKY601")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/core/hot.py", 6),
        ("src/repro/core/hot.py", 7),
        ("src/repro/serve/hot.py", 6),
        ("src/repro/serve/hot.py", 7),
    ]
    assert "repro.obs" in found[0].message


def test_sky601_accepts_sanctioned_clocks(tmp_path):
    source = '''\
import time

from repro.obs import clock, span


def timed():
    with span("engine.execute"):
        return clock() + time.monotonic()
'''
    write_tree(tmp_path, {"src/repro/serve/clean.py": source})
    assert findings_for(tmp_path, "SKY601") == []


# ---------------------------------------------------------------------------
# SKY701 — planner layering


def test_sky701_flags_plan_importing_upward(tmp_path):
    source = '''\
import repro.serve
from repro.bench.planner import run_planner_bench
from repro.core.join import JoinUpgrader


def plan_it():
    return repro.serve, run_planner_bench, JoinUpgrader
'''
    write_tree(
        tmp_path,
        {
            "src/repro/plan/bad.py": source,
            "src/repro/serve/ok.py": source,  # outside the plan layer
        },
    )
    found = findings_for(tmp_path, "SKY701")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/plan/bad.py", 1),
        ("src/repro/plan/bad.py", 2),
    ]
    assert "repro.serve" in found[0].message


def test_sky701_accepts_downward_imports(tmp_path):
    source = '''\
from repro.core.join import JoinUpgrader
from repro.costs.calibration import fit_unit_costs
from repro.instrumentation import Counters
from repro.rtree.stats import collect_stats


def fine():
    return JoinUpgrader, fit_unit_costs, Counters, collect_stats
'''
    write_tree(tmp_path, {"src/repro/plan/good.py": source})
    assert findings_for(tmp_path, "SKY701") == []


# ---------------------------------------------------------------------------
# SKY801/SKY802 — fork/spawn safety


def test_sky801_flags_module_level_primitives_in_shard(tmp_path):
    source = '''\
import threading
from threading import Condition

_LOCK = threading.Lock()
_COND = Condition()


def worker_side():
    local = threading.Lock()  # per-call: fine
    return local
'''
    write_tree(
        tmp_path,
        {
            "src/repro/shard/bad.py": source,
            "src/repro/serve/ok.py": source,  # outside the shard tier
        },
    )
    found = findings_for(tmp_path, "SKY801")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/shard/bad.py", 4),
        ("src/repro/shard/bad.py", 5),
    ]
    assert "threading.Lock" in found[0].message
    assert "spawned worker" in found[0].message


def test_sky801_accepts_instance_locks_and_ignores(tmp_path):
    source = '''\
import threading

_FLAG = threading.Lock()  # skyup: ignore[SKY801]


class Handle:
    def __init__(self):
        self._lock = threading.Lock()
'''
    write_tree(tmp_path, {"src/repro/shard/good.py": source})
    assert findings_for(tmp_path, "SKY801") == []


def test_sky802_flags_multiprocessing_outside_spawn(tmp_path):
    source = '''\
import multiprocessing
from multiprocessing import shared_memory


def go():
    return multiprocessing.get_context(), shared_memory
'''
    write_tree(
        tmp_path,
        {
            "src/repro/shard/engine2.py": source,
            "src/repro/shard/spawn.py": source,  # the sanctioned doorway
            "tests/driver.py": source,  # tests may drive mp directly
        },
    )
    found = findings_for(tmp_path, "SKY802")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/shard/engine2.py", 1),
        ("src/repro/shard/engine2.py", 2),
    ]
    assert "repro.shard.spawn" in found[0].message


def test_sky802_accepts_spawn_helpers(tmp_path):
    source = '''\
from repro.shard.spawn import attach_segment, make_process, make_queue


def go():
    return make_process, make_queue, attach_segment
'''
    write_tree(tmp_path, {"src/repro/shard/fine.py": source})
    assert findings_for(tmp_path, "SKY802") == []


# ---------------------------------------------------------------------------
# SKY901 — unbounded blocking receives


def test_sky901_flags_blocking_get_without_timeout(tmp_path):
    source = '''\
def drain(q):
    a = q.get()
    b = q.get(True)
    c = q.get(block=True)
    return a, b, c
'''
    write_tree(
        tmp_path,
        {
            "src/repro/shard/recv.py": source,
            "src/repro/serve/ok.py": source,  # outside the shard tier
        },
    )
    found = findings_for(tmp_path, "SKY901")
    assert [(f.path, f.line) for f in found] == [
        ("src/repro/shard/recv.py", 2),
        ("src/repro/shard/recv.py", 3),
        ("src/repro/shard/recv.py", 4),
    ]
    assert "timeout" in found[0].message


def test_sky901_accepts_bounded_and_non_queue_gets(tmp_path):
    source = '''\
def ok(q, cache, key):
    a = q.get(timeout=0.2)
    b = q.get(True, 0.2)
    c = q.get(block=False)
    d = q.get(False)
    e = q.get_nowait()
    f = cache.get(key)
    g = cache.get(key, None)
    h = q.get()  # skyup: ignore[SKY901]
    return a, b, c, d, e, f, g, h
'''
    write_tree(tmp_path, {"src/repro/shard/fine2.py": source})
    assert findings_for(tmp_path, "SKY901") == []


# ---------------------------------------------------------------------------
# baseline


def test_baseline_round_trip_and_filtering(tmp_path):
    write_tree(tmp_path, {"src/repro/bare.py": "try:\n    pass\nexcept:\n    pass\n"})
    found = run_lint(tmp_path)
    assert [f.rule for f in found] == ["SKY202"]
    baseline_path = tmp_path / "lint-baseline.json"
    save_baseline(baseline_path, found)
    reloaded = load_baseline(baseline_path)
    assert reloaded == found
    assert run_lint(tmp_path, baseline=reloaded) == []


def test_baseline_matches_across_line_drift(tmp_path):
    old = Finding(
        rule="SKY202",
        path="src/repro/bare.py",
        line=999,  # drifted: only (rule, path, message) must match
        col=1,
        message="bare 'except:': name the exception types",
    )
    write_tree(tmp_path, {"src/repro/bare.py": "try:\n    pass\nexcept:\n    pass\n"})
    assert run_lint(tmp_path, baseline=[old]) == []


def test_malformed_baseline_is_a_config_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# the repo itself, and the CLI


def test_repo_lints_clean():
    assert run_lint(REPO_ROOT) == []


def test_cli_lint_exits_zero_on_repo(capsys):
    code = main(["lint", "--root", str(REPO_ROOT)])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_exits_one_with_locations(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/locky.py": LOCKY})
    code = main(["lint", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/locky.py:15:" in out
    assert "SKY101" in out


def test_cli_lint_json_format_parses(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/locky.py": LOCKY})
    code = main(["lint", "--root", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "SKY101"


def test_cli_lint_select_restricts_rules(tmp_path, capsys):
    write_tree(
        tmp_path,
        {
            "src/repro/locky.py": LOCKY,
            "src/repro/bare.py": "try:\n    pass\nexcept:\n    pass\n",
        },
    )
    code = main(["lint", "--root", str(tmp_path), "--select", "SKY202"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SKY202" in out and "SKY101" not in out


def test_cli_lint_baseline_workflow(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/locky.py": LOCKY})
    code = main(
        ["lint", "--root", str(tmp_path), "--baseline", "--update-baseline"]
    )
    assert code == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    capsys.readouterr()
    code = main(["lint", "--root", str(tmp_path), "--baseline"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "SKY101", "SKY102", "SKY201", "SKY202", "SKY203",
        "SKY301", "SKY401", "SKY402", "SKY501", "SKY502", "SKY503",
    ):
        assert rule_id in out


def test_cli_lint_bad_root_exits_two(tmp_path, capsys):
    code = main(["lint", "--root", str(tmp_path / "nowhere")])
    assert code == 2
    assert "error:" in capsys.readouterr().err
