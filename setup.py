"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package remains installable on minimal environments that lack the ``wheel``
package (``pip install -e . --no-build-isolation`` needs ``bdist_wheel``
there, while ``python setup.py develop`` does not).
"""

from setuptools import setup

setup()
